"""Sparse-backend identity suite: thresholded CSR vs the dense reference.

The load-bearing contract of the sparse affectance backend
(:mod:`repro.core.affectance_sparse`): in the complete-pattern regime (a
tail tolerance so tight the certified radius covers the instance) every
schedule — first-fit, repeated capacity under all three admissions, the
one-shot capacity kernels — is **byte-identical** to the dense backend,
and a sparse :class:`DynamicContext` stays byte-identical to a dense one
through arbitrary churn, including the repair schedulers running on top.
At a *moderate* tolerance the pattern is genuinely sparse and the
certificate is the guarantee: every dropped entry is dominated by the
per-link tail bounds, so any schedule the sparse backend emits is
feasible under the dense matrix within ``1 + eps``.

Property tests sweep the registry scenarios (geometric, shadowed-urban,
and measured asymmetric spaces) plus random planar instances; unit tests
pin the tail certificate against brute-force dropped mass and the
backend-invariant validation added to ``check_context`` /
``SchedulingContext.__init__``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.context import (
    DynamicContext,
    SchedulingContext,
    check_context,
)
from repro.algorithms.repair import (
    CapacityRepairScheduler,
    OnlineRepairScheduler,
)
from repro.core.affectance_sparse import build_sparse_affectance
from repro.core.decay import DecaySpace
from repro.core.links import LinkSet
from repro.errors import LinkError
from repro.scenarios import build_scenario, scenario_names
from tests.conftest import CHURN_EXAMPLES, make_planar_links

#: A tolerance so tight the certified radius always reaches the instance
#: diameter: the pattern is complete, nothing is dropped, and the sparse
#: kernels must reproduce the dense floats bit for bit.
TINY_EPS = 1e-300

#: Scenarios whose churn traces the dense-vs-sparse dynamic identity
#: sweeps (includes an asymmetric space: the per-orientation distance
#: storage is exactly what it exercises).
CHURN_SCENARIOS = ("planar_uniform", "dense_urban", "asymmetric_measured")


def _dense_and_sparse(
    links: LinkSet, **kwargs
) -> tuple[SchedulingContext, SchedulingContext]:
    dense = SchedulingContext(links, noise=0.0, beta=1.0, **kwargs)
    sparse = SchedulingContext(
        links, noise=0.0, beta=1.0, backend="sparse", eps=TINY_EPS, **kwargs
    )
    return dense, sparse


class TestDenseIdentity:
    """Complete-pattern regime: sparse == dense, byte for byte."""

    @pytest.mark.parametrize("name", scenario_names())
    def test_registry_scenarios_schedule_identical(self, name):
        links = build_scenario(name, n_links=40, seed=1)
        dense, sparse = _dense_and_sparse(links)
        assert sparse.sparse_affectance.complete
        assert dense.first_fit() == sparse.first_fit()
        for admission in ("bounded_growth", "general", "adaptive"):
            assert dense.repeated_capacity(
                admission=admission
            ) == sparse.repeated_capacity(admission=admission)
        assert dense.capacity_bounded_growth() == sparse.capacity_bounded_growth()
        assert dense.capacity_general() == sparse.capacity_general()

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=CHURN_EXAMPLES)
    def test_random_planar_instances_identical(self, seed):
        links = make_planar_links(30, alpha=3.0, seed=seed)
        dense, sparse = _dense_and_sparse(links)
        assert dense.first_fit() == sparse.first_fit()
        assert dense.repeated_capacity() == sparse.repeated_capacity()

    def test_sparse_values_match_dense_entries(self):
        links = build_scenario("asymmetric_measured", n_links=30, seed=4)
        dense, sparse = _dense_and_sparse(links)
        a = dense.raw_affectance
        rows, cols, values = sparse.sparse_affectance.triplets()
        assert np.array_equal(values, a[rows, cols])


class TestModerateEps:
    """Genuinely sparse regime: certified slack instead of identity."""

    @pytest.mark.parametrize(
        "name,eps", [("planar_uniform", 0.05), ("dense_urban", 0.2)]
    )
    def test_sparse_schedule_feasible_within_certificate(self, name, eps):
        links = build_scenario(name, n_links=400, seed=0)
        dense = SchedulingContext(links, noise=0.0, beta=1.0)
        sparse = SchedulingContext(
            links, noise=0.0, beta=1.0, backend="sparse", eps=eps
        )
        sa = sparse.sparse_affectance
        m = links.m
        assert sa.nnz < m * (m - 1)  # the pattern actually dropped pairs
        assert float(np.max(sa.tail_in + sa.tail_out)) <= eps
        ff = sparse.first_fit()
        assert sorted(v for slot in ff for v in slot) == list(range(m))
        a = np.minimum(dense.raw_affectance, 1.0)
        for slot in ff:
            idx = np.asarray(slot, dtype=int)
            block = a[np.ix_(idx, idx)]
            np.fill_diagonal(block, 0.0)
            # The dense in-sum exceeds the sparse one by at most the
            # certified dropped tail, and the sparse sum passed <= 1.
            assert np.all(block.sum(axis=0) <= 1.0 + sa.tail_in[idx])


class TestDynamicChurnIdentity:
    """Dense and sparse dynamic contexts stay identical through churn."""

    @staticmethod
    def _drive(links: LinkSet, seed: int, make_scheduler, **dyn_kwargs):
        pairs = [(l.sender, l.receiver) for l in links]
        m0 = max(4, links.m // 2)
        dyn = DynamicContext(links.space, pairs[:m0], **dyn_kwargs)
        rs = make_scheduler(dyn)
        rng = np.random.default_rng(seed)
        alive = list(range(m0))
        nxt = m0
        history = []
        for _ in range(16):
            if rng.random() < 0.55 or len(alive) <= 3:
                batch = [
                    pairs[(nxt + j) % len(pairs)]
                    for j in range(int(rng.integers(1, 3)))
                ]
                nxt += len(batch)
                slots = dyn.add_links(batch)
                alive.extend(slots)
                rs.apply(slots, [])
            else:
                gone = [alive.pop(int(rng.integers(len(alive))))]
                dyn.remove_links(gone)
                rs.apply([], gone)
            history.append(rs.schedule.slots)
        return dyn, history

    @pytest.mark.parametrize("scenario", CHURN_SCENARIOS)
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=CHURN_EXAMPLES)
    def test_frozen_matrices_identical_after_churn(self, scenario, seed):
        links = build_scenario(scenario, n_links=14, seed=3)
        d, _ = self._drive(links, seed, OnlineRepairScheduler)
        s, _ = self._drive(
            links, seed, OnlineRepairScheduler,
            backend="sparse", eps=TINY_EPS,
        )
        fd, fs = d.freeze(), s.freeze()
        assert fs.sparse_affectance.complete
        rows, cols, values = fs.sparse_affectance.triplets()
        assert np.array_equal(values, fd.raw_affectance[rows, cols])
        assert fd.first_fit() == fs.first_fit()
        assert fd.repeated_capacity() == fs.repeated_capacity()

    @pytest.mark.parametrize("scenario", CHURN_SCENARIOS)
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=CHURN_EXAMPLES)
    def test_online_repair_trace_identical(self, scenario, seed):
        links = build_scenario(scenario, n_links=14, seed=3)
        make = lambda dyn: OnlineRepairScheduler(dyn, cascade=2)
        _, dense_hist = self._drive(links, seed, make)
        _, sparse_hist = self._drive(
            links, seed, make, backend="sparse", eps=TINY_EPS
        )
        assert dense_hist == sparse_hist

    @pytest.mark.parametrize("admission", ("adaptive", "general"))
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=CHURN_EXAMPLES)
    def test_capacity_repair_trace_identical(self, admission, seed):
        links = build_scenario("planar_uniform", n_links=14, seed=3)
        make = lambda dyn: CapacityRepairScheduler(
            dyn, admission=admission, compaction_every=3
        )
        _, dense_hist = self._drive(links, seed, make)
        _, sparse_hist = self._drive(
            links, seed, make, backend="sparse", eps=TINY_EPS
        )
        assert dense_hist == sparse_hist


class TestTailCertificate:
    """The per-link tail bounds dominate the actual dropped mass."""

    def test_certificate_dominates_brute_force_dropped_mass(self):
        links = build_scenario("planar_uniform", n_links=200, seed=5)
        dense = SchedulingContext(links, noise=0.0, beta=1.0)
        a = dense.raw_affectance
        # Pin a radius well below the diameter so pairs really drop.
        sparse = build_sparse_affectance(
            links, dense.powers, eps=1.0, radius=6.0
        )
        assert 0 < sparse.nnz < links.m * (links.m - 1)
        rows, cols, values = sparse.triplets()
        assert np.array_equal(values, a[rows, cols])
        dropped = a.copy()
        np.fill_diagonal(dropped, 0.0)
        dropped[rows, cols] = 0.0
        assert np.all(dropped.sum(axis=0) <= sparse.tail_in * (1 + 1e-12))
        assert np.all(dropped.sum(axis=1) <= sparse.tail_out * (1 + 1e-12))

    def test_near_threshold_pair_kept_exactly(self):
        # Two parallel unit links, sender-to-receiver gap just inside the
        # pinned radius: the pair must be stored with the exact dense
        # value.  Shift the second link just outside: the pair drops and
        # its whole affectance is (certifiably) inside the tail bound.
        def instance(gap: float) -> LinkSet:
            pts = np.array(
                [[0.0, 0.0], [1.0, 0.0], [1.0 + gap, 0.0], [2.0 + gap, 0.0]]
            )
            return LinkSet(
                DecaySpace.from_points(pts, 3.0), [(0, 1), (2, 3)]
            )

        radius = 5.0
        near = instance(gap=4.99)  # d(s_1, r_0) = 1 + 4.99 - 1 = 4.99
        ctx = SchedulingContext(near, noise=0.0, beta=1.0)
        sp = build_sparse_affectance(
            near, ctx.powers, eps=1.0, radius=radius
        )
        a = ctx.raw_affectance
        assert sp.raw.gather_row(1, np.array([0]))[0] == a[1, 0] > 0.0

        far = instance(gap=5.01)
        ctx_f = SchedulingContext(far, noise=0.0, beta=1.0)
        sp_f = build_sparse_affectance(
            far, ctx_f.powers, eps=1.0, radius=radius
        )
        assert sp_f.raw.gather_row(1, np.array([0]))[0] == 0.0
        af = ctx_f.raw_affectance
        assert af[1, 0] <= sp_f.tail_in[0]
        assert af[1, 0] <= sp_f.tail_out[1]


class TestBackendValidation:
    """The backend invariants fail fast with a clear LinkError."""

    def test_sparse_requires_geometry(self):
        f = np.array([[0.0, 2.0, 3.0], [2.0, 0.0, 2.0], [3.0, 2.0, 0.0]])
        links = LinkSet(DecaySpace(f), [(0, 1), (1, 2)])
        with pytest.raises(LinkError, match="SpaceGeometry"):
            SchedulingContext(links, noise=0.0, beta=1.0, backend="sparse")
        with pytest.raises(LinkError, match="SpaceGeometry"):
            DynamicContext(links.space, [(0, 1)], backend="sparse", radius=1.0)

    def test_unknown_backend_rejected(self):
        links = make_planar_links(6, alpha=3.0, seed=0)
        with pytest.raises(LinkError, match="unknown affectance backend"):
            SchedulingContext(links, noise=0.0, beta=1.0, backend="csr")

    def test_bad_eps_and_radius_rejected(self):
        links = make_planar_links(6, alpha=3.0, seed=0)
        with pytest.raises(LinkError, match="eps must be positive"):
            SchedulingContext(
                links, noise=0.0, beta=1.0, backend="sparse", eps=0.0
            )
        with pytest.raises(LinkError, match="radius must be positive"):
            SchedulingContext(
                links, noise=0.0, beta=1.0, backend="sparse", radius=-1.0
            )

    def test_check_context_pins_backend(self):
        links = make_planar_links(8, alpha=3.0, seed=0)
        dense, sparse = _dense_and_sparse(links)
        check_context(dense, links, 0.0, 1.0, backend="dense")
        with pytest.raises(LinkError, match="backend"):
            check_context(sparse, links, 0.0, 1.0, backend="dense")

    def test_empty_sparse_dynamic_needs_radius(self):
        links = make_planar_links(6, alpha=3.0, seed=0)
        with pytest.raises(LinkError, match="explicit interaction radius"):
            DynamicContext(links.space, [], backend="sparse")

    def test_dense_context_has_no_sparse_pattern(self):
        links = make_planar_links(6, alpha=3.0, seed=0)
        dense = SchedulingContext(links, noise=0.0, beta=1.0)
        with pytest.raises(LinkError, match="backend='sparse'"):
            dense.sparse_affectance

    def test_sparse_context_refuses_dense_distance_matrix(self):
        links = make_planar_links(6, alpha=3.0, seed=0)
        sparse = SchedulingContext(
            links, noise=0.0, beta=1.0, backend="sparse", eps=TINY_EPS
        )
        with pytest.raises(LinkError, match="sparse_link_distances"):
            sparse.link_distances
