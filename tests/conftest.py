"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core.decay import DecaySpace
from repro.core.links import LinkSet

# Hypothesis profiles.  Both are derandomized (fixed example sequence per
# test, no shared-database flakiness), so the churn-trace suites are
# deterministic everywhere; the profiles differ only in depth:
#
# ``repro``
#     The tier-1 default: a small example budget keeps the suite fast on
#     every push.
# ``nightly``
#     The deep sweep the scheduled CI job runs: a 10x example budget for
#     the property suites (churn traces, batched-arrival identities,
#     repair invariants) that tier-1 only samples.
#
# Select with ``HYPOTHESIS_PROFILE=nightly`` (defaults to ``repro``).
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "nightly",
    max_examples=250,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))


def pytest_configure(config):
    """Register project markers (there is no pytest.ini to carry them)."""
    config.addinivalue_line(
        "markers",
        "shards: sharded scheduling/repair suites (select with -m shards)",
    )
    config.addinivalue_line(
        "markers",
        "service: scheduler daemon / loadgen suites (select with -m service)",
    )

#: Example budget for the heavy churn-trace property suites (each
#: example replays a whole churn trace with from-scratch cross-checks):
#: a fifth of the active profile's budget, so tier-1 stays cheap while
#: the nightly profile deepens the sweeps ~10x.  Computed at conftest
#: import from the profile the env var selected — the env var is the
#: *only* lever for these suites: pytest's ``--hypothesis-profile``
#: flag loads after this module is imported, and per-test
#: ``@settings(max_examples=CHURN_EXAMPLES)`` overrides a profile's
#: budget anyway, so the CLI flag cannot deepen them.
CHURN_EXAMPLES = max(5, settings.default.max_examples // 5)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(20140223)


@pytest.fixture
def planar_space(rng: np.random.Generator) -> DecaySpace:
    """A 16-node geometric decay space (alpha = 3) in a 10x10 box."""
    pts = rng.uniform(0, 10, size=(16, 2))
    return DecaySpace.from_points(pts, 3.0)


@pytest.fixture
def planar_links(rng: np.random.Generator) -> LinkSet:
    """Eight random planar links under geometric decay (alpha = 3)."""
    senders = rng.uniform(0, 10, size=(8, 2))
    receivers = senders + rng.uniform(-1.2, 1.2, size=(8, 2))
    pts = np.concatenate([senders, receivers])
    space = DecaySpace.from_points(pts, 3.0)
    return LinkSet(space, [(i, 8 + i) for i in range(8)])


def make_planar_links(
    n_links: int,
    alpha: float,
    seed: int,
    extent: float = 10.0,
    link_scale: float = 1.2,
) -> LinkSet:
    """Deterministic planar link-set factory used across test modules."""
    gen = np.random.default_rng(seed)
    senders = gen.uniform(0, extent, size=(n_links, 2))
    angle = gen.uniform(0, 2 * np.pi, size=n_links)
    radius = gen.uniform(0.3, 1.0, size=n_links) * link_scale
    receivers = senders + np.stack(
        [radius * np.cos(angle), radius * np.sin(angle)], axis=1
    )
    pts = np.concatenate([senders, receivers])
    space = DecaySpace.from_points(pts, alpha)
    return LinkSet(space, [(i, n_links + i) for i in range(n_links)])


def random_decay_matrix(
    n: int, seed: int, low: float = 0.5, high: float = 20.0, symmetric: bool = True
) -> np.ndarray:
    """A valid random decay matrix."""
    gen = np.random.default_rng(seed)
    f = gen.uniform(low, high, size=(n, n))
    if symmetric:
        f = (f + f.T) / 2.0
    np.fill_diagonal(f, 0.0)
    return f
