"""Tests for repro.core.affectance (Sec. 2.4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.affectance import (
    affectance_matrix,
    in_affectance,
    in_affectances_within,
    noise_constants,
    out_affectance,
    total_affectance,
)
from repro.core.decay import DecaySpace
from repro.core.links import LinkSet
from repro.core.power import uniform_power
from repro.core.sinr import sinr
from repro.errors import InfeasibleLinkError, PowerError
from tests.conftest import make_planar_links


@pytest.fixture
def two_links() -> LinkSet:
    # Link 0: f_00 = 1, link 1: f_11 = 4; cross decays 16 and 25.
    f = np.array(
        [
            [0.0, 1.0, 3.0, 16.0],
            [1.0, 0.0, 2.0, 6.0],
            [3.0, 2.0, 0.0, 4.0],
            [25.0, 6.0, 4.0, 0.0],
        ]
    )
    space = DecaySpace(f)
    return LinkSet(space, [(0, 1), (2, 3)])


class TestNoiseConstants:
    def test_zero_noise_gives_beta(self, two_links):
        c = noise_constants(two_links, uniform_power(two_links), beta=1.5)
        assert np.allclose(c, 1.5)

    def test_noise_raises_constant(self, two_links):
        p = uniform_power(two_links, 10.0)
        c = noise_constants(two_links, p, noise=1.0, beta=1.0)
        # c_v = beta / (1 - beta N f_vv / P): link 0 -> 1/(1-0.1), link 1 -> 1/(1-0.4)
        assert c[0] == pytest.approx(1.0 / 0.9)
        assert c[1] == pytest.approx(1.0 / 0.6)

    def test_infeasible_link_raises(self, two_links):
        with pytest.raises(InfeasibleLinkError, match="overcome"):
            noise_constants(two_links, uniform_power(two_links, 1.0), noise=0.5)

    def test_validation(self, two_links):
        p = uniform_power(two_links)
        with pytest.raises(PowerError, match="beta"):
            noise_constants(two_links, p, beta=0.0)
        with pytest.raises(PowerError, match="noise"):
            noise_constants(two_links, p, noise=-1.0)
        with pytest.raises(PowerError, match="shape"):
            noise_constants(two_links, np.ones(3))


class TestAffectanceMatrix:
    def test_hand_computed_values(self, two_links):
        a = affectance_matrix(two_links, uniform_power(two_links), clip=False)
        # a_w(v) = c_v * f_vv / f_wv with uniform power, beta = 1.
        # a_1(0) = f_00 / f(s_1, r_0) = 1 / f(2, 1) = 1/2.
        assert a[1, 0] == pytest.approx(0.5)
        # a_0(1) = f_11 / f(s_0, r_1) = 4 / f(0, 3) = 4/16.
        assert a[0, 1] == pytest.approx(0.25)
        assert a[0, 0] == 0.0 and a[1, 1] == 0.0

    def test_clipping(self, two_links):
        # Raise beta so raw affectance exceeds 1 and clipping binds.
        raw = affectance_matrix(
            two_links, uniform_power(two_links), beta=3.0, clip=False
        )
        clipped = affectance_matrix(
            two_links, uniform_power(two_links), beta=3.0, clip=True
        )
        assert raw[1, 0] == pytest.approx(1.5)
        assert clipped[1, 0] == 1.0

    def test_power_ratio_scales(self, two_links):
        p = np.array([1.0, 4.0])
        a = affectance_matrix(two_links, p, clip=False)
        # a_1(0) multiplied by P_1/P_0 = 4.
        assert a[1, 0] == pytest.approx(2.0)
        # a_0(1) divided by 4.
        assert a[0, 1] == pytest.approx(0.0625)

    def test_colocated_interferer_infinite(self):
        f = np.array(
            [
                [0.0, 1.0, 2.0],
                [1.0, 0.0, 1.0],
                [2.0, 1.0, 0.0],
            ]
        )
        space = DecaySpace(f)
        links = LinkSet(space, [(0, 1), (1, 2)])  # s_1 = r_0 = node 1
        raw = affectance_matrix(links, uniform_power(links), clip=False)
        assert raw[1, 0] == np.inf
        clipped = affectance_matrix(links, uniform_power(links), clip=True)
        assert clipped[1, 0] == 1.0


class TestAggregation:
    def test_in_out_affectance(self, two_links):
        a = affectance_matrix(two_links, uniform_power(two_links), clip=False)
        assert in_affectance(a, [0, 1], 0) == pytest.approx(a[1, 0])
        assert out_affectance(a, 0, [0, 1]) == pytest.approx(a[0, 1])

    def test_in_affectances_within(self, two_links):
        a = affectance_matrix(two_links, uniform_power(two_links), clip=False)
        vec = in_affectances_within(a, [0, 1])
        assert vec[0] == pytest.approx(a[1, 0])
        assert vec[1] == pytest.approx(a[0, 1])

    def test_total_affectance(self, two_links):
        a = affectance_matrix(two_links, uniform_power(two_links), clip=False)
        assert total_affectance(a, [0, 1]) == pytest.approx(a[1, 0] + a[0, 1])


@given(
    st.integers(min_value=2, max_value=7),
    st.integers(min_value=0, max_value=60),
    st.floats(min_value=1.0, max_value=2.5),
    st.floats(min_value=0.0, max_value=0.05),
)
def test_affectance_sinr_equivalence(n_links, seed, beta, noise):
    """SINR_v >= beta iff unclipped in-affectance <= 1 (Sec. 2.4)."""
    links = make_planar_links(n_links, alpha=3.0, seed=seed)
    powers = uniform_power(links, 10.0)
    a = affectance_matrix(links, powers, noise=noise, beta=beta, clip=False)
    active = list(range(n_links))
    s = sinr(links, powers, active, noise=noise)
    in_aff = in_affectances_within(a, active)
    for v in range(n_links):
        # Strict equivalence away from the boundary.
        if abs(in_aff[v] - 1.0) > 1e-9:
            assert (s[v] >= beta) == (in_aff[v] <= 1.0)
