"""Tests for repro.core.decay (Definition 2.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.decay import DecaySpace
from repro.errors import DecaySpaceError
from tests.conftest import random_decay_matrix


def small_matrix() -> np.ndarray:
    return np.array(
        [
            [0.0, 1.0, 4.0],
            [2.0, 0.0, 8.0],
            [3.0, 5.0, 0.0],
        ]
    )


class TestValidation:
    def test_accepts_valid_matrix(self):
        space = DecaySpace(small_matrix())
        assert space.n == 3

    def test_rejects_nonsquare(self):
        with pytest.raises(DecaySpaceError, match="square"):
            DecaySpace(np.zeros((2, 3)))

    def test_rejects_empty(self):
        with pytest.raises(DecaySpaceError, match="at least one node"):
            DecaySpace(np.zeros((0, 0)))

    def test_rejects_nonzero_diagonal(self):
        f = small_matrix()
        f[1, 1] = 0.5
        with pytest.raises(DecaySpaceError, match="identity of indiscernibles"):
            DecaySpace(f)

    def test_rejects_zero_offdiagonal(self):
        f = small_matrix()
        f[0, 1] = 0.0
        with pytest.raises(DecaySpaceError, match="strictly positive"):
            DecaySpace(f)

    def test_rejects_negative(self):
        f = small_matrix()
        f[0, 1] = -1.0
        with pytest.raises(DecaySpaceError, match="strictly positive"):
            DecaySpace(f)

    def test_rejects_infinite(self):
        f = small_matrix()
        f[0, 1] = np.inf
        with pytest.raises(DecaySpaceError, match="finite"):
            DecaySpace(f)

    def test_rejects_nan(self):
        f = small_matrix()
        f[0, 1] = np.nan
        with pytest.raises(DecaySpaceError, match="finite"):
            DecaySpace(f)

    def test_label_count_must_match(self):
        with pytest.raises(DecaySpaceError, match="labels"):
            DecaySpace(small_matrix(), labels=["a", "b"])

    def test_matrix_is_readonly(self):
        space = DecaySpace(small_matrix())
        with pytest.raises(ValueError):
            space.f[0, 1] = 9.0

    def test_input_not_aliased(self):
        f = small_matrix()
        space = DecaySpace(f)
        f[0, 1] = 42.0
        assert space.decay(0, 1) == 1.0


class TestConstructors:
    def test_from_points_matches_manual(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        space = DecaySpace.from_points(pts, 2.0)
        assert space.decay(0, 1) == pytest.approx(25.0)
        assert space.decay(1, 0) == pytest.approx(25.0)

    def test_from_distances(self):
        d = np.array([[0.0, 2.0], [2.0, 0.0]])
        space = DecaySpace.from_distances(d, 3.0)
        assert space.decay(0, 1) == pytest.approx(8.0)

    def test_from_distances_rejects_bad_alpha(self):
        with pytest.raises(DecaySpaceError, match="positive"):
            DecaySpace.from_distances(np.zeros((2, 2)), 0.0)

    def test_from_gains_inverts(self):
        g = np.array([[np.inf, 0.25], [0.5, np.inf]])
        space = DecaySpace.from_gains(g)
        assert space.decay(0, 1) == pytest.approx(4.0)
        assert space.decay(1, 0) == pytest.approx(2.0)
        assert space.decay(0, 0) == 0.0

    def test_from_gains_rejects_nonpositive(self):
        with pytest.raises(DecaySpaceError, match="positive"):
            DecaySpace.from_gains(np.array([[1.0, -1.0], [1.0, 1.0]]))

    def test_from_points_requires_2d(self):
        with pytest.raises(DecaySpaceError, match="2-D"):
            DecaySpace.from_points(np.array([1.0, 2.0]), 2.0)


class TestAccessors:
    def test_decay_and_gain(self):
        space = DecaySpace(small_matrix())
        assert space.decay(1, 0) == 2.0
        assert space.gain(1, 0) == pytest.approx(0.5)
        assert space.gain(0, 0) == np.inf

    def test_min_max_ratio(self):
        space = DecaySpace(small_matrix())
        assert space.min_decay() == 1.0
        assert space.max_decay() == 8.0
        assert space.decay_ratio() == pytest.approx(8.0)

    def test_off_diagonal_size(self):
        space = DecaySpace(small_matrix())
        assert space.off_diagonal().shape == (6,)

    def test_len(self):
        assert len(DecaySpace(small_matrix())) == 3

    def test_zeta_upper_bound(self):
        space = DecaySpace(small_matrix())
        assert space.zeta_upper_bound() == pytest.approx(np.log2(8.0))

    def test_labels_preserved(self):
        space = DecaySpace(small_matrix(), labels=["a", "b", "c"])
        assert space.labels == ("a", "b", "c")


class TestStructure:
    def test_symmetry_detection(self):
        assert not DecaySpace(small_matrix()).is_symmetric()
        sym = random_decay_matrix(5, seed=1, symmetric=True)
        assert DecaySpace(sym).is_symmetric()

    @pytest.mark.parametrize(
        "how,expected",
        [("max", 2.0), ("min", 1.0), ("mean", 1.5), ("geomean", np.sqrt(2.0))],
    )
    def test_symmetrized(self, how, expected):
        space = DecaySpace(small_matrix())
        out = space.symmetrized(how)
        assert out.is_symmetric()
        assert out.decay(0, 1) == pytest.approx(expected)

    def test_symmetrized_rejects_unknown(self):
        with pytest.raises(DecaySpaceError, match="symmetrization"):
            DecaySpace(small_matrix()).symmetrized("median")

    def test_restrict(self):
        space = DecaySpace(small_matrix(), labels=["a", "b", "c"])
        sub = space.restrict([2, 0])
        assert sub.n == 2
        assert sub.decay(0, 1) == 3.0  # f(c, a)
        assert sub.labels == ("c", "a")

    def test_restrict_rejects_bad_indices(self):
        space = DecaySpace(small_matrix())
        with pytest.raises(DecaySpaceError, match="empty"):
            space.restrict([])
        with pytest.raises(DecaySpaceError, match="distinct"):
            space.restrict([0, 0])
        with pytest.raises(DecaySpaceError, match="range"):
            space.restrict([0, 7])

    def test_ball_semantics(self):
        # Ball contains nodes with decay TOWARDS the center below radius.
        space = DecaySpace(small_matrix())
        assert set(space.ball(0, 2.5)) == {0, 1}  # f(1,0)=2 < 2.5; f(2,0)=3
        assert set(space.ball(0, 3.5)) == {0, 1, 2}

    def test_equality_and_hash(self):
        a = DecaySpace(small_matrix())
        b = DecaySpace(small_matrix())
        c = DecaySpace(small_matrix() * 2.0)
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestQuasiDistances:
    def test_quasi_distance_exponent(self):
        space = DecaySpace.from_points(np.array([[0, 0], [2, 0], [5, 0]]), 3.0)
        d = space.quasi_distances()
        assert d[0, 1] == pytest.approx(2.0, rel=1e-3)
        assert d[0, 2] == pytest.approx(5.0, rel=1e-3)

    def test_explicit_zeta(self):
        space = DecaySpace(small_matrix())
        d = space.quasi_distances(zeta=2.0)
        assert d[1, 2] == pytest.approx(np.sqrt(8.0))

    def test_induced_quasimetric_satisfies_triangle(self, planar_space):
        qm = planar_space.induced_quasimetric()
        assert qm.n == planar_space.n


@given(st.integers(min_value=3, max_value=8), st.integers(min_value=0, max_value=99))
def test_random_spaces_roundtrip(n, seed):
    """Any valid decay matrix builds a space; restriction preserves decays."""
    f = random_decay_matrix(n, seed=seed, symmetric=False)
    space = DecaySpace(f)
    sub = space.restrict(range(n - 1))
    assert np.allclose(sub.f, f[: n - 1, : n - 1])
