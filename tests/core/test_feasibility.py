"""Tests for repro.core.feasibility (feasibility + Lemma B.1)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.feasibility import (
    feasibility_margin,
    is_feasible,
    is_k_feasible,
    signal_strengthening,
    strengthening_class_bound,
)
from repro.core.power import uniform_power
from repro.core.sinr import is_sinr_feasible
from repro.errors import LinkError
from tests.conftest import make_planar_links


class TestFeasibility:
    def test_matches_sinr(self):
        links = make_planar_links(6, alpha=3.0, seed=4)
        powers = uniform_power(links)
        for k in (1, 2, 3):
            for combo in itertools.combinations(range(6), k):
                assert is_feasible(links, list(combo), powers) == is_sinr_feasible(
                    links, powers, list(combo)
                )

    def test_downward_closed_exhaustive(self):
        links = make_planar_links(6, alpha=3.0, seed=9)
        powers = uniform_power(links)
        full = [s for s in range(6)]
        feasible_sets = [
            set(c)
            for k in range(1, 7)
            for c in itertools.combinations(full, k)
            if is_feasible(links, list(c), powers)
        ]
        for s in feasible_sets:
            for drop in s:
                smaller = sorted(s - {drop})
                if smaller:
                    assert is_feasible(links, smaller, powers)

    def test_singletons_always_feasible_without_noise(self):
        links = make_planar_links(5, alpha=3.0, seed=2)
        powers = uniform_power(links)
        for v in range(5):
            assert is_feasible(links, [v], powers)

    def test_margin(self):
        links = make_planar_links(6, alpha=3.0, seed=4)
        powers = uniform_power(links)
        sub = [0, 1, 2]
        margin = feasibility_margin(links, sub, powers)
        assert (margin <= 1.0) == is_feasible(links, sub, powers)
        assert feasibility_margin(links, [0], powers) == 0.0

    def test_k_feasible_nested(self):
        links = make_planar_links(8, alpha=3.0, seed=5)
        powers = uniform_power(links)
        for combo in itertools.combinations(range(8), 2):
            if is_k_feasible(links, list(combo), powers, 4.0):
                assert is_k_feasible(links, list(combo), powers, 2.0)
                assert is_feasible(links, list(combo), powers)


class TestStrengtheningBound:
    @pytest.mark.parametrize(
        "p,q,expected", [(1.0, 1.0, 4), (1.0, 2.0, 16), (2.0, 3.0, 9)]
    )
    def test_bound_values(self, p, q, expected):
        assert strengthening_class_bound(p, q) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            strengthening_class_bound(0.0, 1.0)


def _max_feasible(links, powers):
    from repro.algorithms.capacity_opt import capacity_optimum

    subset, _ = capacity_optimum(links, powers)
    return subset


class TestSignalStrengthening:
    def test_output_partitions_input(self):
        links = make_planar_links(12, alpha=3.0, seed=7)
        powers = uniform_power(links)
        subset = _max_feasible(links, powers)
        classes = signal_strengthening(links, subset, powers, 1.0, 2.0)
        merged = sorted(int(v) for cls in classes for v in cls)
        assert merged == sorted(subset)

    @pytest.mark.parametrize("q", [1.0, 2.0, 4.0])
    def test_classes_are_q_feasible_and_bounded(self, q):
        for seed in (1, 2, 3):
            links = make_planar_links(12, alpha=3.0, seed=seed)
            powers = uniform_power(links)
            subset = _max_feasible(links, powers)
            classes = signal_strengthening(links, subset, powers, 1.0, q)
            assert len(classes) <= strengthening_class_bound(1.0, q)
            for cls in classes:
                assert is_k_feasible(links, cls, powers, q)

    def test_rejects_infeasible_input(self):
        links = make_planar_links(10, alpha=3.0, seed=1)
        powers = uniform_power(links)
        all_links = list(range(10))
        if not is_feasible(links, all_links, powers):
            with pytest.raises(LinkError, match="not 1.0-feasible|not 1-feasible"):
                signal_strengthening(links, all_links, powers, 1.0, 2.0)

    def test_rejects_q_below_p(self):
        links = make_planar_links(4, alpha=3.0, seed=1)
        powers = uniform_power(links)
        with pytest.raises(ValueError, match="q >= p"):
            signal_strengthening(links, [0], powers, 2.0, 1.0)

    def test_rejects_duplicate_indices(self):
        links = make_planar_links(4, alpha=3.0, seed=1)
        powers = uniform_power(links)
        with pytest.raises(LinkError, match="distinct"):
            signal_strengthening(links, [0, 0], powers, 1.0, 2.0)

    def test_singleton_passthrough(self):
        links = make_planar_links(4, alpha=3.0, seed=1)
        powers = uniform_power(links)
        classes = signal_strengthening(links, [2], powers, 1.0, 4.0)
        assert len(classes) == 1 and list(classes[0]) == [2]


@given(
    st.integers(min_value=6, max_value=12),
    st.integers(min_value=0, max_value=40),
    st.floats(min_value=1.0, max_value=8.0),
)
def test_strengthening_property(n_links, seed, q):
    """Lemma B.1 as a property: q-feasible classes within the class bound."""
    links = make_planar_links(n_links, alpha=3.0, seed=seed)
    powers = uniform_power(links)
    subset = _max_feasible(links, powers)
    classes = signal_strengthening(links, subset, powers, 1.0, q)
    assert len(classes) <= strengthening_class_bound(1.0, q)
    for cls in classes:
        assert is_k_feasible(links, cls, powers, q)
