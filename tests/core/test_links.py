"""Tests for repro.core.links."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decay import DecaySpace
from repro.core.links import Link, LinkSet, links_from_pairs
from repro.errors import LinkError


@pytest.fixture
def space() -> DecaySpace:
    f = np.array(
        [
            [0.0, 2.0, 5.0, 9.0],
            [2.0, 0.0, 3.0, 7.0],
            [5.0, 3.0, 0.0, 4.0],
            [9.0, 7.0, 4.0, 0.0],
        ]
    )
    return DecaySpace(f)


class TestLink:
    def test_basic(self):
        link = Link(0, 3)
        assert link.sender == 0 and link.receiver == 3
        assert tuple(link) == (0, 3)

    def test_reversed(self):
        assert Link(0, 3).reversed() == Link(3, 0)

    def test_rejects_self_loop(self):
        with pytest.raises(LinkError, match="differ"):
            Link(2, 2)

    def test_rejects_negative(self):
        with pytest.raises(LinkError, match="non-negative"):
            Link(-1, 2)

    def test_hashable_and_ordered(self):
        assert len({Link(0, 1), Link(0, 1), Link(1, 0)}) == 2
        assert Link(0, 1) < Link(0, 2) < Link(1, 0)


class TestLinkSet:
    def test_construction_from_tuples(self, space):
        links = LinkSet(space, [(0, 1), (2, 3)])
        assert links.m == 2
        assert links[0] == Link(0, 1)
        assert list(links.senders) == [0, 2]
        assert list(links.receivers) == [1, 3]

    def test_cross_decay_semantics(self, space):
        links = LinkSet(space, [(0, 1), (2, 3)])
        # F[u, v] = f(s_u, r_v): decay from sender u to receiver v.
        assert links.cross_decay[0, 0] == 2.0  # f(0, 1)
        assert links.cross_decay[0, 1] == 9.0  # f(0, 3)
        assert links.cross_decay[1, 0] == 3.0  # f(2, 1)
        assert links.cross_decay[1, 1] == 4.0  # f(2, 3)

    def test_lengths(self, space):
        links = LinkSet(space, [(0, 1), (2, 3)])
        assert list(links.lengths) == [2.0, 4.0]
        assert links.length(1) == 4.0

    def test_rejects_empty(self, space):
        with pytest.raises(LinkError, match="at least one"):
            LinkSet(space, [])

    def test_rejects_out_of_range(self, space):
        with pytest.raises(LinkError, match="out of range"):
            LinkSet(space, [(0, 4)])

    def test_duplicates_allowed(self, space):
        links = LinkSet(space, [(0, 1), (0, 1)])
        assert links.m == 2

    def test_order_by_length(self, space):
        links = LinkSet(space, [(0, 3), (0, 1), (2, 3)])  # lengths 9, 2, 4
        assert list(links.order_by_length()) == [1, 2, 0]
        assert list(links.order_by_length(descending=True)) == [0, 2, 1]

    def test_order_tie_break_by_index(self, space):
        links = LinkSet(space, [(0, 1), (1, 0)])  # both length 2
        assert list(links.order_by_length()) == [0, 1]

    def test_subset(self, space):
        links = LinkSet(space, [(0, 1), (2, 3), (1, 2)])
        sub = links.subset([2, 0])
        assert sub.m == 2
        assert sub[0] == Link(1, 2)

    def test_subset_rejects_empty(self, space):
        links = LinkSet(space, [(0, 1)])
        with pytest.raises(LinkError, match="empty"):
            links.subset([])

    def test_subset_rejects_negative_indices(self, space):
        links = LinkSet(space, [(0, 1), (2, 3), (1, 2)])
        # A negative index must not silently wrap to the last link.
        with pytest.raises(LinkError, match="0..2"):
            links.subset([-1, 0])

    def test_subset_rejects_out_of_range(self, space):
        links = LinkSet(space, [(0, 1), (2, 3)])
        with pytest.raises(LinkError, match="0..1"):
            links.subset([0, 2])

    def test_quasi_lengths(self, space):
        links = LinkSet(space, [(0, 1), (2, 3)])
        q = links.quasi_lengths(zeta=2.0)
        assert q[0] == pytest.approx(np.sqrt(2.0))
        assert q[1] == pytest.approx(2.0)

    def test_quasi_lengths_rejects_bad_zeta(self, space):
        links = LinkSet(space, [(0, 1)])
        with pytest.raises(LinkError, match="positive"):
            links.quasi_lengths(zeta=-1.0)

    def test_iteration_and_len(self, space):
        links = LinkSet(space, [(0, 1), (2, 3)])
        assert len(links) == 2
        assert [l.sender for l in links] == [0, 2]

    def test_cross_decay_readonly(self, space):
        links = LinkSet(space, [(0, 1)])
        with pytest.raises(ValueError):
            links.cross_decay[0, 0] = 1.0

    def test_links_from_pairs(self, space):
        links = links_from_pairs(space, [(0, 1)])
        assert links.m == 1

    def test_shared_endpoints_allowed(self, space):
        # A node may serve as sender of one link and receiver of another.
        links = LinkSet(space, [(0, 1), (1, 2)])
        assert links.cross_decay[1, 0] == 0.0  # f(s_1=1, r_0=1) = 0
