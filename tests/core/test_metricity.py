"""Tests for repro.core.metricity (Definition 2.2, Sec. 4.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.decay import DecaySpace
from repro.core.metricity import (
    metricity,
    metricity_bisection,
    metricity_witness,
    phi,
    satisfies_metricity,
    varphi,
    varphi_witness,
    zeta_of_triple,
)
from repro.spaces.constructions import three_point_space, uniform_space
from tests.conftest import random_decay_matrix


class TestGeometricSpaces:
    """Sec. 2.2: geometric path loss has zeta = alpha."""

    @pytest.mark.parametrize("alpha", [1.0, 2.0, 3.5, 6.0])
    def test_zeta_equals_alpha_on_line(self, alpha):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.5, 0.0], [4.0, 0.0]])
        space = DecaySpace.from_points(pts, alpha)
        assert metricity(space) == pytest.approx(alpha, abs=5e-3)

    @pytest.mark.parametrize("alpha", [2.0, 3.0])
    def test_zeta_equals_alpha_random_plane(self, alpha, rng):
        pts = rng.uniform(0, 5, size=(12, 2))
        # Anchor a colinear triple so the geometric bound zeta = alpha is
        # tight regardless of how the random points fall.
        anchors = np.array([[6.0, 6.0], [7.0, 6.0], [8.0, 6.0]])
        space = DecaySpace.from_points(np.concatenate([pts, anchors]), alpha)
        assert metricity(space) == pytest.approx(alpha, abs=5e-3)

    def test_colinear_equidistant_triple_is_tight(self):
        # x --1-- z --1-- y: the binding triple for any alpha.
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        space = DecaySpace.from_points(pts, 4.0)
        assert metricity(space) == pytest.approx(4.0, abs=1e-3)


class TestPredicate:
    def test_monotone_in_zeta(self, planar_space):
        z = metricity(planar_space)
        assert satisfies_metricity(planar_space, z)
        assert satisfies_metricity(planar_space, z * 2.0)
        assert not satisfies_metricity(planar_space, max(z - 0.05, 1e-3))

    def test_returned_value_satisfies(self):
        for seed in range(5):
            f = random_decay_matrix(7, seed=seed, symmetric=False)
            z = metricity(f)
            if z > 0:
                assert satisfies_metricity(f, z)

    def test_rejects_nonpositive_zeta(self, planar_space):
        with pytest.raises(ValueError, match="positive"):
            satisfies_metricity(planar_space, 0.0)

    def test_tiny_spaces_trivially_satisfied(self):
        assert satisfies_metricity(np.array([[0.0, 1.0], [2.0, 0.0]]), 0.5)
        assert metricity(np.array([[0.0, 1.0], [2.0, 0.0]])) == 0.0

    def test_witness_found_below_zeta(self, planar_space):
        z = metricity(planar_space)
        w = metricity_witness(planar_space, max(z - 0.05, 1e-3))
        assert w is not None
        x, y, mid = w
        f = planar_space.f
        bad_zeta = max(z - 0.05, 1e-3)
        lhs = f[x, y] ** (1 / bad_zeta)
        rhs = f[x, mid] ** (1 / bad_zeta) + f[mid, y] ** (1 / bad_zeta)
        assert lhs > rhs

    def test_witness_none_at_zeta(self, planar_space):
        z = metricity(planar_space)
        assert metricity_witness(planar_space, z + 1e-6) is None


class TestUniformAndDegenerate:
    def test_uniform_space_has_zero_metricity(self):
        assert metricity(uniform_space(5)) == 0.0

    def test_uniform_satisfies_everything(self):
        space = uniform_space(5)
        for z in (0.01, 0.5, 1.0, 10.0):
            assert satisfies_metricity(space, z)


class TestZetaOfTriple:
    def test_trivial_when_direct_not_longest(self):
        assert zeta_of_triple(1.0, 2.0, 0.5) == 0.0
        assert zeta_of_triple(2.0, 2.0, 0.1) == 0.0

    def test_matches_known_value(self):
        # f_xy = 2^a, detours 1: need 2^(a/zeta) <= 2 -> zeta >= a.
        for a in (2.0, 3.0, 5.0):
            z = zeta_of_triple(2.0**a, 1.0, 1.0)
            assert z == pytest.approx(a, abs=1e-6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            zeta_of_triple(0.0, 1.0, 1.0)

    def test_consistent_with_global(self):
        space = three_point_space(100.0)
        # For the 3-point space, global zeta is the max per-triple zeta.
        f = space.f
        best = 0.0
        for x in range(3):
            for y in range(3):
                for z in range(3):
                    if len({x, y, z}) == 3:
                        best = max(best, zeta_of_triple(f[x, y], f[x, z], f[z, y]))
        assert metricity(space) == pytest.approx(best, abs=1e-6)


class TestVarphi:
    def test_metric_has_varphi_at_most_one(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [0.5, 1.0]])
        space = DecaySpace.from_points(pts, 1.0)
        assert varphi(space) <= 1.0 + 1e-9

    def test_geometric_varphi_value(self):
        # Colinear equidistant: f_xz/(f_xy + f_yz) = 2^alpha/2 = 2^(alpha-1).
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        space = DecaySpace.from_points(pts, 3.0)
        assert varphi(space) == pytest.approx(4.0)
        assert phi(space) == pytest.approx(2.0)

    def test_witness_attains_value(self, planar_space):
        value, witness = varphi_witness(planar_space)
        assert witness is not None
        x, y, z = witness
        f = planar_space.f
        assert value == pytest.approx(f[x, z] / (f[x, y] + f[y, z]))

    def test_three_point_example(self):
        """Sec. 4.2: varphi < 2 bounded, zeta grows like log q / log log q."""
        zetas = []
        for q in (1e2, 1e4, 1e8):
            space = three_point_space(q)
            assert varphi(space) < 2.0
            zetas.append(metricity(space))
        assert zetas[0] < zetas[1] < zetas[2]
        # Against the predictor log q / log log q: ratio stays near 1.
        for q, z in zip((1e2, 1e4, 1e8), zetas):
            predictor = np.log(q) / np.log(np.log(q))
            assert 0.8 <= z / predictor <= 1.6

    def test_tiny_space(self):
        assert varphi(np.array([[0.0, 1.0], [1.0, 0.0]])) == 0.0
        assert phi(np.array([[0.0, 1.0], [1.0, 0.0]])) == float("-inf")


@given(
    st.integers(min_value=3, max_value=7),
    st.integers(min_value=0, max_value=200),
)
def test_phi_at_most_zeta(n, seed):
    """Sec. 4.2 (corrected direction): varphi <= 2^zeta on every space."""
    f = random_decay_matrix(n, seed=seed, low=0.1, high=50.0, symmetric=False)
    z = metricity(f)
    v = varphi(f)
    assert v <= 2.0 ** max(z, 0.0) * (1.0 + 1e-6)


@given(
    st.integers(min_value=3, max_value=6),
    st.integers(min_value=0, max_value=100),
    st.floats(min_value=1.05, max_value=4.0),
)
def test_predicate_interval_structure(n, seed, factor):
    """Once satisfied at zeta, satisfied at every larger exponent."""
    f = random_decay_matrix(n, seed=seed, symmetric=False)
    z = metricity(f)
    if z > 0:
        assert satisfies_metricity(f, z * factor)


@given(st.integers(min_value=0, max_value=100))
def test_scaling_invariance(seed):
    """Metricity is invariant under scaling decays by a power: zeta scales."""
    f = random_decay_matrix(5, seed=seed, low=1.5, high=30.0, symmetric=False)
    z1 = metricity(f)
    z2 = metricity(f**2.0)  # f^2 doubles every exponent requirement
    if z1 > 1e-6:
        assert z2 == pytest.approx(2.0 * z1, rel=5e-2, abs=1e-3)


@given(
    st.integers(min_value=0, max_value=100),
    st.floats(min_value=1.0, max_value=6.0),
)
def test_property_geometric_metricity_equals_alpha(seed, alpha):
    """Sec 2.2: zeta(d^alpha) = alpha for a metric d with a tight triangle.

    Random planar points give a genuine metric; the anchored colinear
    triple makes the worst triangle tight, so the supremum is exactly
    alpha regardless of how the random points fall.
    """
    gen = np.random.default_rng(seed)
    pts = gen.uniform(0, 5, size=(8, 2))
    anchors = np.array([[6.0, 6.0], [7.25, 6.0], [8.5, 6.0]])
    pts = np.concatenate([pts, anchors])
    diff = pts[:, None, :] - pts[None, :, :]
    d = np.sqrt((diff**2).sum(axis=-1))
    space = DecaySpace.from_distances(d, alpha)
    assert metricity(space) == pytest.approx(alpha, abs=5e-3)


@given(
    st.integers(min_value=3, max_value=8),
    st.integers(min_value=0, max_value=150),
)
def test_property_vectorized_agrees_with_bisection(n, seed):
    """The root-solving kernel matches the predicate bisection everywhere."""
    f = random_decay_matrix(n, seed=seed, low=0.2, high=40.0, symmetric=False)
    assert metricity(f) == pytest.approx(metricity_bisection(f), abs=1e-6)


@given(st.integers(min_value=0, max_value=60))
def test_property_vectorized_agrees_with_predicate(seed):
    """The returned value satisfies the predicate; slightly less does not."""
    f = random_decay_matrix(7, seed=seed, low=0.3, high=25.0, symmetric=False)
    z = metricity(f)
    if z > 0:
        assert satisfies_metricity(f, z)
        assert not satisfies_metricity(f, z * (1.0 - 1e-4))


def test_extreme_dynamic_range_uses_log_fallback():
    """Spans beyond float pow range still agree with the bisection."""
    f = random_decay_matrix(8, seed=3, low=1e-8, high=1e12, symmetric=False)
    assert metricity(f) == pytest.approx(metricity_bisection(f), abs=1e-6)
