"""Cross-validation: the tiered metricity kernel against its slow oracle.

The scaled kernel in :func:`repro.core.metricity.metricity` (float32
screen -> float64 confirm, batched middle-node blocks, optional thread
pool) is only trustworthy because every tier is pinned against
:func:`repro.core.metricity.metricity_bisection`, the predicate-bisection
reference.  This module sweeps the pinning across:

* every registered scenario's decay space (seeded registry sweep);
* random matrices across sizes and seeds (both screen-tier paths);
* adversarial wide-dynamic-range matrices that force the float64 linear
  screen and the log-domain (``logaddexp``) screen;
* structured tie-heavy spaces (equally spaced colinear points) that
  maximize float32-margin false positives in the screen -> confirm
  handoff;
* explicit ``block_size`` / ``workers`` settings (including forcing many
  blocks through the real thread pool), which cannot move the result
  beyond the solver tolerance.

Tolerances: ordinary spaces agree to 1e-6.  On extreme-dynamic-range
spaces both implementations carry an input-conditioned skew — the oracle's
predicate slack shifts its bracket by ``slack / |h'|`` and the kernel
drops constraining log-ratios inside the float64 noise floor — so those
cases assert the documented looser tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decay import DecaySpace
from repro.core.metricity import metricity, metricity_bisection
from repro.scenarios import build_scenario, scenario_names
from tests.conftest import random_decay_matrix

#: Ordinary spaces: both implementations resolve the same maximum root.
TOL = 1e-6
#: Wide-dynamic-range spaces: see module docstring.
TOL_EXTREME = 1e-3

#: Small enough that the bisection oracle stays subsecond per case.
SCENARIO_LINKS = 12


class TestRegistrySweep:
    """Every registry scenario's decay space, multiple seeds."""

    @pytest.mark.parametrize("name", scenario_names())
    @pytest.mark.parametrize("seed", [0, 1])
    def test_scenario_space_matches_oracle(self, name, seed):
        links = build_scenario(name, n_links=SCENARIO_LINKS, seed=seed)
        f = links.space.f
        assert metricity(f) == pytest.approx(
            metricity_bisection(f), abs=TOL
        ), f"scenario {name!r}, seed {seed}"


class TestRandomSweep:
    @pytest.mark.parametrize("n", [4, 6, 9, 13])
    @pytest.mark.parametrize("seed", range(6))
    def test_asymmetric_random(self, n, seed):
        f = random_decay_matrix(n, seed=seed, low=0.2, high=40.0, symmetric=False)
        assert metricity(f) == pytest.approx(metricity_bisection(f), abs=TOL)

    @pytest.mark.parametrize("seed", range(4))
    def test_symmetric_random(self, seed):
        f = random_decay_matrix(10, seed=seed, low=0.5, high=20.0, symmetric=True)
        assert metricity(f) == pytest.approx(metricity_bisection(f), abs=TOL)

    @pytest.mark.parametrize("seed", range(4))
    def test_wide_range_random(self, seed):
        """Large but float64-representable dynamic range (f64 screen tier)."""
        f = random_decay_matrix(8, seed=seed, low=1e-8, high=1e12, symmetric=False)
        assert metricity(f) == pytest.approx(metricity_bisection(f), abs=TOL)


class TestExtremeDynamicRange:
    """Adversarial spaces pushing the scan into its exactness tiers.

    A colinear metric with geometrically exploding coordinates keeps the
    metricity near 1 while the decay span covers almost the whole float64
    exponent range, so ``span / zeta`` exceeds the float32 and (for the
    largest span) even the float64 power tier thresholds.
    """

    @staticmethod
    def _colinear_space(lo_exp: float, hi_exp: float, n: int) -> DecaySpace:
        coords = np.concatenate([[0.0], np.logspace(lo_exp, hi_exp, n - 1)])
        d = np.abs(coords[:, None] - coords[None, :])
        return DecaySpace.from_distances(d, 1.0)

    def test_log_domain_tier(self):
        """span/zeta > 1000: the screen must run via logaddexp."""
        space = self._colinear_space(-155.0, 150.0, 40)
        assert np.log2(space.decay_ratio()) > 1000.0  # really the log tier
        assert metricity(space) == pytest.approx(
            metricity_bisection(space), abs=TOL_EXTREME
        )

    def test_f64_linear_tier(self):
        """80 < span/zeta <= 1000: float64 powers, no float32 screen."""
        space = self._colinear_space(-75.0, 75.0, 40)
        assert 80.0 < np.log2(space.decay_ratio()) <= 1000.0
        assert metricity(space) == pytest.approx(
            metricity_bisection(space), abs=TOL_EXTREME
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_log_tier_with_noise(self, seed):
        """Log-tier space perturbed multiplicatively (still huge span)."""
        space = self._colinear_space(-155.0, 150.0, 24)
        rng = np.random.default_rng(seed)
        noise = np.exp(rng.normal(0.0, 0.05, size=space.f.shape))
        f = space.f * noise
        np.fill_diagonal(f, 0.0)
        assert metricity(f) == pytest.approx(
            metricity_bisection(f), abs=TOL_EXTREME
        )


class TestScreenConfirmHandoff:
    """Inputs that maximize float32-margin false positives."""

    def test_equally_spaced_grid_ties(self):
        """Colinear equally spaced points: every inner triple is an exact
        tie at the answer, so the float32 screen's margin flags them all
        every block — the float64 confirm must reject them without drift."""
        pts = np.stack([np.arange(120.0), np.zeros(120)], axis=1)
        space = DecaySpace.from_points(pts, 3.0)
        assert metricity(space) == pytest.approx(
            metricity_bisection(space), abs=TOL
        )

    def test_near_tie_cloud(self):
        """A jittered grid: dense near-ties just inside the screen margin."""
        rng = np.random.default_rng(5)
        base = np.arange(80.0)
        pts = np.stack(
            [base + rng.normal(0, 1e-7, 80), rng.normal(0, 1e-7, 80)], axis=1
        )
        space = DecaySpace.from_points(pts, 2.5)
        assert metricity(space) == pytest.approx(
            metricity_bisection(space), abs=TOL
        )


class TestScanParameters:
    """Partitioning cannot move the result beyond the solver tolerance.

    Which triples are flagged at a stale-vs-fresh incumbent can differ
    exactly for roots within ~tol of it, so different block partitions
    (and worker interleavings) may disagree at the ulp level — never
    beyond ``tol``.  The assertions use the default ``tol=1e-9``.
    """

    @pytest.mark.parametrize("block_size", [1, 2, 3, 64])
    @pytest.mark.parametrize("seed", [2, 11])
    def test_block_size_invariance(self, block_size, seed):
        f = random_decay_matrix(40, seed=seed, low=0.2, high=40.0, symmetric=False)
        assert metricity(f, block_size=block_size) == pytest.approx(
            metricity(f), abs=1e-9
        )

    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_invariance(self, workers):
        """block_size=2 forces many blocks through the actual thread pool
        (the auto block size would cover a small space in one block and
        silently fall back to the serial path)."""
        links = build_scenario("dense_urban", n_links=30, seed=3)
        f = links.space.f
        pooled = metricity(f, workers=workers, block_size=2)
        serial = metricity(f, workers=1, block_size=2)
        assert pooled == pytest.approx(serial, abs=1e-9)

    def test_pool_matches_oracle(self):
        """The threaded scan is pinned to the bisection oracle directly."""
        f = random_decay_matrix(36, seed=7, low=0.3, high=30.0, symmetric=False)
        assert metricity(f, workers=3, block_size=2) == pytest.approx(
            metricity_bisection(f), abs=TOL
        )

    def test_rejects_bad_parameters(self):
        f = random_decay_matrix(5, seed=0)
        with pytest.raises(ValueError, match="block_size"):
            metricity(f, block_size=0)
        with pytest.raises(ValueError, match="workers"):
            metricity(f, workers=0)
