"""Tests for repro.core.power (Sec. 2.4 monotone assignments)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decay import DecaySpace
from repro.core.links import LinkSet
from repro.core.power import (
    is_monotone,
    linear_power,
    mean_power,
    monotonicity_violation,
    oblivious_power,
    uniform_power,
)
from repro.errors import PowerError


@pytest.fixture
def links() -> LinkSet:
    pts = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 0.0], [8.0, 0.0],
                    [0.0, 5.0], [2.5, 5.0]])
    space = DecaySpace.from_points(pts, 2.0)
    return LinkSet(space, [(0, 1), (2, 3), (4, 5)])  # lengths 1, 9, 6.25


class TestFamilies:
    def test_uniform(self, links):
        p = uniform_power(links, 2.5)
        assert np.all(p == 2.5)
        assert is_monotone(links, p)

    def test_uniform_rejects_nonpositive(self, links):
        with pytest.raises(PowerError, match="positive"):
            uniform_power(links, 0.0)

    def test_linear_equalizes_received_signal(self, links):
        p = linear_power(links, scale=3.0)
        received = p / links.lengths
        assert np.allclose(received, 3.0)
        assert is_monotone(links, p)

    def test_mean_power(self, links):
        p = mean_power(links)
        assert np.allclose(p, np.sqrt(links.lengths))
        assert is_monotone(links, p)

    @pytest.mark.parametrize("tau", [0.0, 0.25, 0.5, 0.75, 1.0])
    def test_oblivious_family_monotone_in_range(self, links, tau):
        assert is_monotone(links, oblivious_power(links, tau))

    @pytest.mark.parametrize("tau", [-0.5, 1.5])
    def test_oblivious_outside_range_not_monotone(self, links, tau):
        assert not is_monotone(links, oblivious_power(links, tau))

    def test_oblivious_rejects_bad_scale(self, links):
        with pytest.raises(PowerError, match="positive"):
            oblivious_power(links, 0.5, scale=-1.0)


class TestMonotonicity:
    def test_violation_reports_pair(self, links):
        # Decreasing power with length violates condition 1.
        p = np.array([3.0, 1.0, 2.0])
        pair = monotonicity_violation(links, p)
        assert pair is not None
        v, w = pair
        assert links.length(v) <= links.length(w)

    def test_signal_condition_violation(self, links):
        # Growing received signal with length violates condition 2.
        lengths = links.lengths
        p = lengths**2  # P/f = f, increasing
        assert not is_monotone(links, p)

    def test_equal_lengths_force_equal_powers(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 3.0], [1.0, 3.0]])
        space = DecaySpace.from_points(pts, 2.0)
        links = LinkSet(space, [(0, 1), (2, 3)])  # equal lengths
        assert is_monotone(links, np.array([2.0, 2.0]))
        assert not is_monotone(links, np.array([1.0, 2.0]))

    def test_shape_validation(self, links):
        with pytest.raises(PowerError, match="shape"):
            is_monotone(links, np.ones(5))

    def test_rejects_nonpositive_powers(self, links):
        with pytest.raises(PowerError, match="positive"):
            is_monotone(links, np.array([1.0, -1.0, 1.0]))

    def test_rejects_nonfinite_powers(self, links):
        with pytest.raises(PowerError, match="positive and finite"):
            is_monotone(links, np.array([1.0, np.inf, 1.0]))
