"""Tests for analytic Rayleigh success probabilities ([10])."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.power import uniform_power
from repro.core.rayleigh import (
    expected_successes,
    rayleigh_success_probabilities,
    thresholding_gap,
)
from repro.distributed.radio import reception_matrix
from repro.errors import PowerError
from tests.conftest import make_planar_links


class TestClosedForm:
    def test_isolated_link_no_noise_certain(self):
        links = make_planar_links(3, alpha=3.0, seed=1)
        p = uniform_power(links)
        probs = rayleigh_success_probabilities(links, p, [0])
        assert probs[0] == pytest.approx(1.0)

    def test_noise_only_formula(self):
        # P[X >= beta*N] = exp(-beta*N/mean) for exponential X.
        links = make_planar_links(2, alpha=3.0, seed=2, extent=100.0)
        p = uniform_power(links, 5.0)
        mean_signal = 5.0 / links.length(0)
        probs = rayleigh_success_probabilities(
            links, p, [0], noise=0.1, beta=2.0
        )
        assert probs[0] == pytest.approx(np.exp(-2.0 * 0.1 / mean_signal))

    def test_single_interferer_formula(self):
        links = make_planar_links(2, alpha=3.0, seed=3)
        p = uniform_power(links)
        probs = rayleigh_success_probabilities(links, p, [0, 1], beta=1.0)
        cross = links.cross_decay
        for v, w in ((0, 1), (1, 0)):
            mean_signal = 1.0 / cross[v, v]
            mean_interf = 1.0 / cross[w, v]
            expected = 1.0 / (1.0 + mean_interf / mean_signal)
            assert probs[v] == pytest.approx(expected)

    def test_probabilities_in_unit_interval(self):
        links = make_planar_links(10, alpha=3.0, seed=4)
        p = uniform_power(links)
        probs = rayleigh_success_probabilities(
            links, p, list(range(10)), noise=0.001, beta=1.5
        )
        assert np.all((probs >= 0.0) & (probs <= 1.0))

    def test_more_interference_lower_probability(self):
        links = make_planar_links(8, alpha=3.0, seed=5)
        p = uniform_power(links)
        small = rayleigh_success_probabilities(links, p, [0, 1])
        large = rayleigh_success_probabilities(links, p, list(range(8)))
        assert large[0] <= small[0] + 1e-12

    def test_empty_active(self):
        links = make_planar_links(3, alpha=3.0, seed=6)
        probs = rayleigh_success_probabilities(links, uniform_power(links), [])
        assert probs.shape == (0,)

    def test_validation(self):
        links = make_planar_links(3, alpha=3.0, seed=6)
        p = uniform_power(links)
        with pytest.raises(PowerError):
            rayleigh_success_probabilities(links, p, [0], beta=0.0)
        with pytest.raises(PowerError):
            rayleigh_success_probabilities(links, p, [0], noise=-1.0)


class TestMonteCarloAgreement:
    def test_matches_simulated_rayleigh(self):
        """The radio layer's Rayleigh mode follows the closed form."""
        links = make_planar_links(5, alpha=3.0, seed=7)
        space = links.space
        p = uniform_power(links)
        active = list(range(5))
        analytic = rayleigh_success_probabilities(links, p, active, beta=1.0)

        rng = np.random.default_rng(11)
        trials = 4000
        hits = np.zeros(5)
        senders = links.senders[active]
        receivers = links.receivers[active]
        for _ in range(trials):
            ok = reception_matrix(
                space, list(senders), 1.0, beta=1.0, rayleigh=True, rng=rng
            )
            for i in range(5):
                if ok[i, receivers[i]]:
                    hits[i] += 1
        empirical = hits / trials
        assert np.allclose(empirical, analytic, atol=0.035)

    def test_expected_successes_sum(self):
        links = make_planar_links(6, alpha=3.0, seed=8)
        p = uniform_power(links)
        active = list(range(6))
        total = expected_successes(links, p, active)
        probs = rayleigh_success_probabilities(links, p, active)
        assert total == pytest.approx(float(probs.sum()))


class TestThresholdingGap:
    def test_gap_sign_structure(self):
        links = make_planar_links(8, alpha=3.0, seed=9)
        p = uniform_power(links)
        gap = thresholding_gap(links, p, list(range(8)))
        # Deterministic success minus a probability: gap in [-1, 1].
        assert np.all((gap >= -1.0) & (gap <= 1.0))

    def test_isolated_links_small_gap(self):
        links = make_planar_links(4, alpha=3.0, seed=10, extent=500.0)
        p = uniform_power(links)
        gap = thresholding_gap(links, p, list(range(4)))
        # Interference is residual (links ~500 units apart): both models
        # succeed almost surely.
        assert np.allclose(gap, 0.0, atol=1e-4)
