"""Tests for repro.core.separation (Sec. 2.4 eta-separation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decay import DecaySpace
from repro.core.links import LinkSet
from repro.core.separation import (
    is_separated_from,
    is_separated_set,
    link_distance_matrix,
    separation_of_set,
    separation_violations,
)


@pytest.fixture
def colinear_links() -> LinkSet:
    """Two unit links far apart on a line, plus one long link near link 0."""
    pts = np.array(
        [
            [0.0, 0.0],   # s0
            [1.0, 0.0],   # r0
            [10.0, 0.0],  # s1
            [11.0, 0.0],  # r1
            [1.5, 0.0],   # s2
            [5.5, 0.0],   # r2
        ]
    )
    space = DecaySpace.from_points(pts, 2.0)
    return LinkSet(space, [(0, 1), (2, 3), (4, 5)])


class TestDistanceMatrix:
    def test_min_of_four(self, colinear_links):
        d = link_distance_matrix(colinear_links, zeta=2.0)
        # Links 0 and 1: endpoint distances 10, 11, 9, 10 -> min 9.
        assert d[0, 1] == pytest.approx(9.0, rel=1e-6)
        assert d[1, 0] == pytest.approx(9.0, rel=1e-6)
        # Links 0 and 2: distances s0-r2=5.5, s2-r0=0.5, s0-s2=1.5, r0-r2=4.5.
        assert d[0, 2] == pytest.approx(0.5, rel=1e-6)

    def test_diagonal_is_link_length(self, colinear_links):
        d = link_distance_matrix(colinear_links, zeta=2.0)
        assert d[0, 0] == pytest.approx(1.0, rel=1e-6)
        assert d[2, 2] == pytest.approx(4.0, rel=1e-6)

    def test_default_zeta_uses_metricity(self, colinear_links):
        d = link_distance_matrix(colinear_links)
        # Metricity of a colinear alpha=2 space is 2.
        assert d[0, 1] == pytest.approx(9.0, rel=1e-3)


class TestSeparationPredicates:
    def test_is_separated_from(self, colinear_links):
        d = link_distance_matrix(colinear_links, zeta=2.0)
        # Link 0 (length 1) vs link 1 at distance 9: separated up to eta 9.
        assert is_separated_from(d, 0, [1], eta=9.0)
        assert not is_separated_from(d, 0, [1], eta=9.1)
        # Relative to link 2's own length 4: distance to link 0 is 0.5.
        assert not is_separated_from(d, 2, [0], eta=0.2)

    def test_own_index_ignored(self, colinear_links):
        d = link_distance_matrix(colinear_links, zeta=2.0)
        assert is_separated_from(d, 0, [0], eta=100.0)

    def test_set_separation(self, colinear_links):
        d = link_distance_matrix(colinear_links, zeta=2.0)
        assert is_separated_set(d, [0, 1], eta=5.0)
        assert not is_separated_set(d, [0, 2], eta=1.0)
        assert is_separated_set(d, [2], eta=100.0)

    def test_violations_listed(self, colinear_links):
        d = link_distance_matrix(colinear_links, zeta=2.0)
        bad = separation_violations(d, [0, 1, 2], eta=1.0)
        assert (0, 2) in bad and (2, 0) in bad
        assert (0, 1) not in bad

    def test_separation_of_set_value(self, colinear_links):
        d = link_distance_matrix(colinear_links, zeta=2.0)
        # Pairwise d(l0, l1)/max(lengths) = 9/1 = 9.
        assert separation_of_set(d, [0, 1]) == pytest.approx(9.0, rel=1e-6)
        # With link 2: d(l0,l2)=0.5 over max length 4 -> 0.125.
        assert separation_of_set(d, [0, 1, 2]) == pytest.approx(0.125, rel=1e-6)

    def test_singleton_is_infinitely_separated(self, colinear_links):
        d = link_distance_matrix(colinear_links, zeta=2.0)
        assert separation_of_set(d, [1]) == np.inf

    def test_consistency_between_predicates(self, colinear_links):
        d = link_distance_matrix(colinear_links, zeta=2.0)
        eta_star = separation_of_set(d, [0, 1, 2])
        assert is_separated_set(d, [0, 1, 2], eta_star)
        assert not is_separated_set(d, [0, 1, 2], eta_star * 1.01)
