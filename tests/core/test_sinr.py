"""Tests for repro.core.sinr (Eq. (1) and thresholding)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decay import DecaySpace
from repro.core.links import LinkSet
from repro.core.sinr import (
    interference,
    is_sinr_feasible,
    received_powers,
    sinr,
    successful,
)
from repro.errors import PowerError


@pytest.fixture
def links() -> LinkSet:
    f = np.array(
        [
            [0.0, 2.0, 8.0, 10.0],
            [2.0, 0.0, 5.0, 4.0],
            [8.0, 5.0, 0.0, 1.0],
            [10.0, 4.0, 1.0, 0.0],
        ]
    )
    return LinkSet(DecaySpace(f), [(0, 1), (2, 3)])


class TestReceivedPowers:
    def test_matrix(self, links):
        r = received_powers(links, np.array([2.0, 3.0]), [0, 1])
        assert r[0, 0] == pytest.approx(1.0)  # 2 / f(0,1)=2
        assert r[0, 1] == pytest.approx(0.2)  # 2 / f(0,3)=10
        assert r[1, 0] == pytest.approx(0.6)  # 3 / f(2,1)=5
        assert r[1, 1] == pytest.approx(3.0)  # 3 / f(2,3)=1

    def test_out_of_range_active(self, links):
        with pytest.raises(PowerError, match="range"):
            received_powers(links, np.ones(2), [0, 5])


class TestSINR:
    def test_values(self, links):
        p = np.array([2.0, 3.0])
        s = sinr(links, p, [0, 1])
        assert s[0] == pytest.approx(1.0 / 0.6)
        assert s[1] == pytest.approx(3.0 / 0.2)

    def test_noise_lowers_sinr(self, links):
        p = np.array([2.0, 3.0])
        s0 = sinr(links, p, [0, 1], noise=0.0)
        s1 = sinr(links, p, [0, 1], noise=0.5)
        assert np.all(s1 < s0)

    def test_isolated_link_no_noise_is_infinite(self, links):
        s = sinr(links, np.ones(2), [0])
        assert s[0] == np.inf

    def test_isolated_link_with_noise(self, links):
        s = sinr(links, np.ones(2), [1], noise=0.25)
        # Signal 1/f(2,3) = 1; SINR = 1/0.25.
        assert s[0] == pytest.approx(4.0)

    def test_interference_vector(self, links):
        p = np.array([2.0, 3.0])
        i = interference(links, p, [0, 1], noise=0.1)
        assert i[0] == pytest.approx(0.7)
        assert i[1] == pytest.approx(0.3)


class TestThresholding:
    def test_successful(self, links):
        p = np.array([2.0, 3.0])
        ok = successful(links, p, [0, 1], beta=2.0)
        assert list(ok) == [False, True]

    def test_beta_validation(self, links):
        with pytest.raises(PowerError, match="positive"):
            successful(links, np.ones(2), [0], beta=0.0)

    def test_feasibility(self, links):
        p = np.array([2.0, 3.0])
        assert is_sinr_feasible(links, p, [0], beta=1.0)
        assert is_sinr_feasible(links, p, [0, 1], beta=1.0)
        assert not is_sinr_feasible(links, p, [0, 1], beta=2.0)

    def test_empty_set_feasible(self, links):
        assert is_sinr_feasible(links, np.ones(2), [])

    def test_feasibility_depends_on_power(self, links):
        # Boosting link 0 makes it pass at beta=2; link 1 keeps a margin.
        assert not is_sinr_feasible(links, np.array([2.0, 3.0]), [0, 1], beta=2.0)
        assert is_sinr_feasible(links, np.array([8.0, 3.0]), [0, 1], beta=2.0)
