"""Tests for channel-based neighborhood estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.contention import busy_fraction, estimate_neighborhood_size
from repro.errors import SimulationError
from repro.spaces.constructions import line_space, uniform_space


class TestBusyFraction:
    def test_no_candidates(self):
        space = line_space(3)
        frac = busy_fraction(
            space, 0, [0], probability=0.5, slots=10,
            rng=np.random.default_rng(1),
        )
        assert frac == 0.0

    def test_always_on_neighbors(self):
        space = uniform_space(4, c=1.0)
        frac = busy_fraction(
            space, 0, [1, 2, 3], probability=0.99, slots=50,
            sense_threshold=0.5, rng=np.random.default_rng(2),
        )
        assert frac > 0.9

    def test_validation(self):
        space = line_space(3)
        with pytest.raises(SimulationError):
            busy_fraction(space, 0, [1], probability=0.0, slots=10)
        with pytest.raises(SimulationError):
            busy_fraction(space, 0, [1], probability=0.5, slots=0)

    def test_seeded_and_deterministic(self):
        """Like every simulation module: an int seed reproduces exactly."""
        space = uniform_space(6, c=1.0)
        a = busy_fraction(space, 0, [1, 2, 3, 4], 0.3, 200, seed=11)
        b = busy_fraction(space, 0, [1, 2, 3, 4], 0.3, 200, seed=11)
        assert a == b
        assert 0.0 <= a <= 1.0
        est1 = estimate_neighborhood_size(
            space, 0, radius=1.0, probability=0.1, slots=500, seed=13
        )
        est2 = estimate_neighborhood_size(
            space, 0, radius=1.0, probability=0.1, slots=500, seed=13
        )
        assert est1 == est2

    def test_generator_seed_matches_rng_keyword(self):
        """`seed=Generator` and the legacy `rng=` draw the same stream."""
        space = uniform_space(5, c=1.0)
        via_seed = busy_fraction(
            space, 0, [1, 2, 3], 0.4, 100,
            seed=np.random.default_rng(7),
        )
        via_rng = busy_fraction(
            space, 0, [1, 2, 3], 0.4, 100,
            rng=np.random.default_rng(7),
        )
        assert via_seed == via_rng


class TestEstimate:
    def test_close_to_truth(self):
        # Uniform space with decay 1: at radius 1 every other node audible.
        space = uniform_space(8, c=1.0)
        est = estimate_neighborhood_size(
            space, 0, radius=1.0, probability=0.1, slots=3000,
            rng=np.random.default_rng(3),
        )
        assert est == pytest.approx(7, abs=1.5)

    def test_zero_neighbors(self):
        # Radius far below every decay: nothing audible.
        space = line_space(4, spacing=2.0, alpha=2.0)
        est = estimate_neighborhood_size(
            space, 0, radius=0.5, probability=0.2, slots=200,
            rng=np.random.default_rng(4),
        )
        assert est == 0.0

    def test_saturation_reports_upper_bound(self):
        space = uniform_space(40, c=1.0)
        est = estimate_neighborhood_size(
            space, 0, radius=1.0, probability=0.9, slots=50,
            rng=np.random.default_rng(5),
        )
        assert est > 0.0 and np.isfinite(est)

    def test_validation(self):
        space = line_space(3)
        with pytest.raises(SimulationError, match="radius"):
            estimate_neighborhood_size(space, 0, radius=0.0)
