"""Tests for the slot-synchronous execution engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.engine import Agent, Message, SlotSimulator
from repro.errors import SimulationError
from repro.spaces.constructions import line_space


class Beacon(Agent):
    """Transmits every slot until `stop_after` transmissions."""

    def __init__(self, node: int, stop_after: int = 10**9) -> None:
        super().__init__(node)
        self.sent = 0
        self.stop_after = stop_after

    def decide(self, slot, rng):
        if self.sent >= self.stop_after:
            return None
        self.sent += 1
        return Message(origin=self.node, payload=("beacon", slot))

    def is_done(self):
        return self.sent >= self.stop_after


class Listener(Agent):
    def __init__(self, node: int) -> None:
        super().__init__(node)
        self.inbox: list[tuple[int, int]] = []

    def decide(self, slot, rng):
        return None

    def on_receive(self, slot, sender, message):
        self.inbox.append((slot, sender))

    def is_done(self):
        return bool(self.inbox)


class TestSimulator:
    def test_delivery(self):
        space = line_space(3, spacing=1.0, alpha=2.0)
        beacon = Beacon(0, stop_after=1)
        listener = Listener(2)
        sim = SlotSimulator(space, [beacon, listener], seed=1)
        transcript = sim.run(max_slots=5)
        assert transcript.completed_at == 1
        assert listener.inbox == [(0, 0)]
        assert transcript.records[0].transmitters == (0,)
        assert (0, 2) in transcript.records[0].deliveries

    def test_collision_blocks_delivery(self):
        # Two beacons equidistant from the listener at beta > 1: collision.
        space = line_space(3, spacing=1.0, alpha=2.0)
        a, b = Beacon(0, stop_after=1), Beacon(2, stop_after=1)
        listener = Listener(1)
        sim = SlotSimulator(space, [a, b, listener], beta=1.5, seed=1)
        transcript = sim.run(max_slots=3)
        assert listener.inbox == []
        assert transcript.completed_at is None  # listener never done

    def test_run_stops_at_budget(self):
        space = line_space(2, spacing=1.0, alpha=2.0)
        sim = SlotSimulator(space, [Beacon(0)], seed=1)
        transcript = sim.run(max_slots=4)
        assert transcript.slots == 4
        assert transcript.completed_at is None

    def test_delivery_count(self):
        space = line_space(2, spacing=1.0, alpha=2.0)
        beacon = Beacon(0, stop_after=3)
        listener = Listener(1)
        sim = SlotSimulator(space, [beacon, listener], seed=1)
        transcript = sim.run(max_slots=10)
        assert transcript.delivery_count() >= 1

    def test_silent_nodes_do_not_receive(self):
        # Node 1 has no agent: deliveries to it are not recorded.
        space = line_space(3, spacing=1.0, alpha=2.0)
        beacon = Beacon(0, stop_after=1)
        sim = SlotSimulator(space, [beacon], seed=1)
        transcript = sim.run(max_slots=1)
        assert transcript.records[0].deliveries == ()


class TestValidation:
    def test_rejects_no_agents(self):
        space = line_space(2)
        with pytest.raises(SimulationError, match="at least one"):
            SlotSimulator(space, [])

    def test_rejects_duplicate_nodes(self):
        space = line_space(3)
        with pytest.raises(SimulationError, match="distinct"):
            SlotSimulator(space, [Beacon(0), Listener(0)])

    def test_rejects_out_of_range(self):
        space = line_space(2)
        with pytest.raises(SimulationError, match="range"):
            SlotSimulator(space, [Beacon(5)])

    def test_rejects_bad_budget(self):
        space = line_space(2)
        sim = SlotSimulator(space, [Beacon(0)])
        with pytest.raises(SimulationError, match="max_slots"):
            sim.run(max_slots=0)

    def test_seed_reproducibility(self):
        space = line_space(4, spacing=1.0, alpha=2.0)

        class Coin(Agent):
            def __init__(self, node):
                super().__init__(node)
                self.choices = []

            def decide(self, slot, rng):
                bit = rng.random() < 0.5
                self.choices.append(bit)
                return Message(self.node) if bit else None

        def run():
            agents = [Coin(i) for i in range(4)]
            SlotSimulator(space, agents, seed=33).run(max_slots=6)
            return [a.choices for a in agents]

        assert run() == run()
