"""Tests for randomized local broadcast (Sec. 3.3 family)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decay import DecaySpace
from repro.distributed.local_broadcast import (
    LocalBroadcastAgent,
    neighborhoods,
    run_local_broadcast,
)
from repro.errors import SimulationError
from repro.spaces.constructions import line_space


class TestNeighborhoods:
    def test_decay_semantics(self):
        space = line_space(5, spacing=1.0, alpha=2.0)
        neigh = neighborhoods(space, radius=4.0)
        # From node 0: decays 1, 4, 9, 16 -> radius 4 includes nodes 1, 2.
        assert list(neigh[0]) == [1, 2]
        assert list(neigh[2]) == [0, 1, 3, 4]

    def test_rejects_bad_radius(self):
        with pytest.raises(SimulationError, match="positive"):
            neighborhoods(line_space(3), 0.0)

    def test_asymmetric_spaces(self):
        f = np.array(
            [
                [0.0, 1.0, 9.0],
                [5.0, 0.0, 1.0],
                [1.0, 9.0, 0.0],
            ]
        )
        space = DecaySpace(f)
        neigh = neighborhoods(space, radius=2.0)
        # Neighborhood of v uses f(v, u): who can hear v.
        assert list(neigh[0]) == [1]
        assert list(neigh[1]) == [2]


class TestAgent:
    def test_probability_scales_with_degree(self):
        quiet = LocalBroadcastAgent(0, degree=10, aggressiveness=1.0)
        loud = LocalBroadcastAgent(1, degree=1, aggressiveness=1.0)
        assert quiet.probability == pytest.approx(0.1)
        assert loud.probability == pytest.approx(1.0)

    def test_release_stops_transmission(self):
        agent = LocalBroadcastAgent(0, degree=1, aggressiveness=1.0)
        rng = np.random.default_rng(1)
        assert agent.decide(0, rng) is not None
        agent.release()
        assert agent.decide(1, rng) is None
        assert agent.is_done()

    def test_rejects_bad_aggressiveness(self):
        with pytest.raises(SimulationError):
            LocalBroadcastAgent(0, degree=1, aggressiveness=0.0)


class TestRun:
    def test_completes_on_small_line(self):
        space = line_space(5, spacing=1.0, alpha=3.0)
        result = run_local_broadcast(
            space, radius=1.5, aggressiveness=0.5, max_slots=5000, seed=3
        )
        assert result.completed
        assert result.coverage == 1.0
        assert 1 <= result.slots <= 5000

    def test_deterministic(self):
        space = line_space(5, spacing=1.0, alpha=3.0)
        a = run_local_broadcast(space, radius=1.5, max_slots=5000, seed=9)
        b = run_local_broadcast(space, radius=1.5, max_slots=5000, seed=9)
        assert a == b

    def test_budget_exhaustion_reports_coverage(self):
        space = line_space(8, spacing=1.0, alpha=2.0)
        result = run_local_broadcast(
            space, radius=36.0, aggressiveness=0.3, max_slots=2, seed=1
        )
        assert not result.completed
        assert 0.0 <= result.coverage < 1.0
        assert result.slots == 2

    def test_isolated_nodes_complete_immediately(self):
        # Radius below the smallest decay: no pairs to serve.
        space = line_space(4, spacing=2.0, alpha=2.0)
        result = run_local_broadcast(space, radius=0.5, max_slots=10, seed=1)
        assert result.completed
        assert result.slots == 1
        assert result.total_pairs == 0

    def test_total_pairs_counts_required_deliveries(self):
        space = line_space(3, spacing=1.0, alpha=2.0)
        result = run_local_broadcast(
            space, radius=1.5, aggressiveness=0.5, max_slots=5000, seed=2
        )
        # Neighborhoods at radius 1.5: 0->{1}, 1->{0,2}, 2->{1}: 4 pairs.
        assert result.total_pairs == 4
        assert result.completed
