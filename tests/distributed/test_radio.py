"""Tests for the SINR radio layer of the distributed simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decay import DecaySpace
from repro.distributed.radio import reception_matrix, receptions
from repro.errors import SimulationError
from repro.spaces.constructions import line_space


@pytest.fixture
def space() -> DecaySpace:
    return line_space(5, spacing=1.0, alpha=2.0)


class TestReceptionMatrix:
    def test_single_transmitter_reaches_everyone(self, space):
        ok = reception_matrix(space, [0], beta=1.0)
        # No interference, no noise: everyone else decodes.
        assert ok.shape == (1, 5)
        assert not ok[0, 0]  # half-duplex
        assert all(ok[0, v] for v in range(1, 5))

    def test_noise_limits_range(self, space):
        # SINR = (1/d^2)/N >= 1 iff d^2 <= 1/N.
        ok = reception_matrix(space, [0], powers=1.0, noise=0.2, beta=1.0)
        # d=1,2: 1/0.2=5, 0.25/0.2=1.25 pass; d=3: 1/9/0.2 = 0.55 fail.
        assert list(ok[0]) == [False, True, True, False, False]

    def test_two_transmitters_capture(self, space):
        ok = reception_matrix(space, [0, 4], beta=1.0)
        tx0, tx4 = 0, 1
        # Node 1: signal from 0 at distance 1 vs interference 1/9 -> decode.
        assert ok[tx0, 1]
        # Node 1 cannot decode node 4: 1/9 against interference 1.
        assert not ok[tx4, 1]
        # Middle node 2 sees both at SINR exactly 1 = beta: threshold is
        # inclusive, so both pass (degenerate tie allowed by the model).
        assert ok[tx0, 2] and ok[tx4, 2]
        # At beta just above 1, the tie breaks to neither.
        strict = reception_matrix(space, [0, 4], beta=1.01)
        assert not strict[tx0, 2] and not strict[tx4, 2]

    def test_transmitters_never_receive(self, space):
        ok = reception_matrix(space, [0, 1], beta=1.0)
        assert not ok[:, 0].any() and not ok[:, 1].any()

    def test_duplicate_transmitters_rejected(self, space):
        with pytest.raises(SimulationError, match="duplicates"):
            reception_matrix(space, [0, 0])

    def test_empty_transmitters(self, space):
        ok = reception_matrix(space, [])
        assert ok.shape == (0, 5)

    def test_bad_params(self, space):
        with pytest.raises(SimulationError):
            reception_matrix(space, [0], beta=0.0)
        with pytest.raises(SimulationError):
            reception_matrix(space, [0], noise=-1.0)
        with pytest.raises(SimulationError):
            reception_matrix(space, [0], powers=0.0)

    def test_rayleigh_requires_rng(self, space):
        with pytest.raises(SimulationError, match="rng"):
            reception_matrix(space, [0], rayleigh=True)

    def test_rayleigh_randomizes(self, space):
        rng = np.random.default_rng(5)
        outcomes = set()
        for _ in range(30):
            ok = reception_matrix(
                space, [0, 4], beta=1.0, rayleigh=True, rng=rng
            )
            outcomes.add(ok.tobytes())
        assert len(outcomes) > 1

    def test_per_transmitter_powers(self, space):
        # Boost node 4 so it captures node 2 against node 0.
        ok = reception_matrix(space, [0, 4], powers=np.array([1.0, 10.0]))
        assert ok[1, 2] and not ok[0, 2]


class TestReceptions:
    def test_pairs_format(self, space):
        pairs = receptions(space, [0], beta=1.0)
        assert (0, 1) in pairs and (0, 4) in pairs
        assert all(t == 0 for t, _ in pairs)

    def test_matches_matrix(self, space):
        tx = [1, 3]
        ok = reception_matrix(space, tx, beta=1.0)
        pairs = set(receptions(space, tx, beta=1.0))
        for t_pos, t in enumerate(tx):
            for v in range(space.n):
                assert ((t, v) in pairs) == bool(ok[t_pos, v])
