"""Tests for no-regret distributed capacity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.feasibility import is_feasible
from repro.core.power import uniform_power
from repro.distributed.regret_capacity import run_regret_capacity
from repro.errors import SimulationError
from tests.conftest import make_planar_links


class TestRegretCapacity:
    def test_trivial_instance_all_transmit(self):
        # Far-apart links: everyone should learn to transmit.
        links = make_planar_links(5, alpha=3.0, seed=1, extent=500.0)
        result = run_regret_capacity(links, rounds=600, seed=2)
        assert result.best_size == 5
        assert np.all(result.final_probabilities > 0.8)
        assert result.mean_successes > 4.0

    def test_best_feasible_is_feasible(self):
        links = make_planar_links(10, alpha=3.0, seed=3)
        result = run_regret_capacity(links, rounds=500, seed=4)
        assert is_feasible(
            links, list(result.best_feasible), uniform_power(links)
        )

    def test_reaches_constant_fraction(self):
        """The amicability-backed guarantee, empirically."""
        from repro.algorithms.capacity_opt import capacity_optimum

        links = make_planar_links(10, alpha=3.0, seed=5)
        _, opt = capacity_optimum(links, uniform_power(links))
        result = run_regret_capacity(links, rounds=1200, seed=6)
        assert result.best_size >= opt / 2

    def test_deterministic(self):
        links = make_planar_links(6, alpha=3.0, seed=7)
        a = run_regret_capacity(links, rounds=200, seed=8)
        b = run_regret_capacity(links, rounds=200, seed=8)
        assert a.mean_successes == b.mean_successes
        assert a.best_feasible == b.best_feasible

    def test_probabilities_shape(self):
        links = make_planar_links(6, alpha=3.0, seed=9)
        result = run_regret_capacity(links, rounds=100, seed=1)
        assert result.final_probabilities.shape == (6,)
        assert np.all(result.final_probabilities >= 0.0)
        assert np.all(result.final_probabilities <= 1.0)

    def test_validation(self):
        links = make_planar_links(4, alpha=3.0, seed=1)
        with pytest.raises(SimulationError):
            run_regret_capacity(links, rounds=0)
        with pytest.raises(SimulationError):
            run_regret_capacity(links, tail_fraction=0.0)

    def test_rounds_recorded(self):
        links = make_planar_links(4, alpha=3.0, seed=1)
        result = run_regret_capacity(links, rounds=77, seed=2)
        assert result.rounds == 77
