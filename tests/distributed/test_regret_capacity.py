"""Tests for no-regret distributed capacity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.feasibility import is_feasible
from repro.core.power import uniform_power
from repro.distributed.regret_capacity import run_regret_capacity
from repro.errors import SimulationError
from tests.conftest import make_planar_links


class TestRegretCapacity:
    def test_trivial_instance_all_transmit(self):
        # Far-apart links: everyone should learn to transmit.
        links = make_planar_links(5, alpha=3.0, seed=1, extent=500.0)
        result = run_regret_capacity(links, rounds=600, seed=2)
        assert result.best_size == 5
        assert np.all(result.final_probabilities > 0.8)
        assert result.mean_successes > 4.0

    def test_best_feasible_is_feasible(self):
        links = make_planar_links(10, alpha=3.0, seed=3)
        result = run_regret_capacity(links, rounds=500, seed=4)
        assert is_feasible(
            links, list(result.best_feasible), uniform_power(links)
        )

    def test_reaches_constant_fraction(self):
        """The amicability-backed guarantee, empirically."""
        from repro.algorithms.capacity_opt import capacity_optimum

        links = make_planar_links(10, alpha=3.0, seed=5)
        _, opt = capacity_optimum(links, uniform_power(links))
        result = run_regret_capacity(links, rounds=1200, seed=6)
        assert result.best_size >= opt / 2

    def test_deterministic(self):
        links = make_planar_links(6, alpha=3.0, seed=7)
        a = run_regret_capacity(links, rounds=200, seed=8)
        b = run_regret_capacity(links, rounds=200, seed=8)
        assert a.mean_successes == b.mean_successes
        assert a.best_feasible == b.best_feasible

    def test_probabilities_shape(self):
        links = make_planar_links(6, alpha=3.0, seed=9)
        result = run_regret_capacity(links, rounds=100, seed=1)
        assert result.final_probabilities.shape == (6,)
        assert np.all(result.final_probabilities >= 0.0)
        assert np.all(result.final_probabilities <= 1.0)

    def test_validation(self):
        links = make_planar_links(4, alpha=3.0, seed=1)
        with pytest.raises(SimulationError):
            run_regret_capacity(links, rounds=0)
        with pytest.raises(SimulationError):
            run_regret_capacity(links, tail_fraction=0.0)

    def test_rounds_recorded(self):
        links = make_planar_links(4, alpha=3.0, seed=1)
        result = run_regret_capacity(links, rounds=77, seed=2)
        assert result.rounds == 77

    def test_shared_context_is_equivalent(self):
        from repro.algorithms.context import SchedulingContext

        links = make_planar_links(8, alpha=3.0, seed=11)
        ctx = SchedulingContext(links)
        plain = run_regret_capacity(links, rounds=300, seed=12)
        shared = run_regret_capacity(links, rounds=300, seed=12, context=ctx)
        assert plain.best_feasible == shared.best_feasible
        assert plain.mean_successes == shared.mean_successes
        assert np.array_equal(
            plain.final_probabilities, shared.final_probabilities
        )


class TestRegretChurn:
    def _scenario(self, seed=31, n_links=10, horizon=500):
        from repro.scenarios import build_dynamic_scenario

        return build_dynamic_scenario(
            "poisson_churn",
            n_links=n_links,
            seed=seed,
            horizon=horizon,
            churn_rate=0.1,
            substrate="planar_uniform",
        )

    def test_churn_run_deterministic_and_shaped(self):
        scn = self._scenario()
        links = scn.initial_links()
        a = run_regret_capacity(links, rounds=scn.horizon, churn=scn, seed=32)
        b = run_regret_capacity(links, rounds=scn.horizon, churn=scn, seed=32)
        assert a.best_feasible == b.best_feasible
        assert a.mean_successes == b.mean_successes
        assert a.active_slots is not None
        assert a.final_probabilities.shape == a.active_slots.shape
        assert np.all(a.final_probabilities >= 0.0)
        assert np.all(a.final_probabilities <= 1.0)

    def test_churn_still_learns(self):
        """Mid-run churn must not stop the learner from finding big sets."""
        scn = self._scenario(horizon=800)
        links = scn.initial_links()
        static = run_regret_capacity(links, rounds=800, seed=33)
        churned = run_regret_capacity(
            links, rounds=800, churn=scn, seed=33
        )
        assert churned.best_size >= max(1, static.best_size // 2)

    def test_mobility_trace_runs(self):
        from repro.scenarios import build_dynamic_scenario

        scn = build_dynamic_scenario(
            "random_waypoint", n_links=8, seed=34, horizon=300
        )
        links = scn.initial_links()
        res = run_regret_capacity(links, rounds=300, churn=scn, seed=35)
        assert res.active_slots is not None
        assert len(res.active_slots) == 8
        assert res.best_size >= 1
