"""Tests for the queueing/stability simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.context import SchedulingContext
from repro.algorithms.scheduling import schedule_first_fit
from repro.distributed.stability import (
    lqf_policy,
    random_policy,
    run_queue_simulation,
)
from repro.errors import LinkError, SimulationError
from repro.scenarios import build_dynamic_scenario
from tests.conftest import make_planar_links


def _lqf_reference(
    queues: np.ndarray, a: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Verbatim copy of the historical one-candidate-at-a-time LQF loop."""
    order = np.argsort(-queues, kind="stable")
    chosen: list[int] = []
    in_aff = np.zeros(queues.shape[0])
    for v in order:
        v = int(v)
        if queues[v] <= 0:
            break
        if in_aff[v] > 1.0:
            continue
        if chosen and np.any(in_aff[chosen] + a[v, chosen] > 1.0):
            continue
        chosen.append(v)
        in_aff += a[v]
    return np.asarray(sorted(chosen), dtype=int)


class TestPolicies:
    def test_lqf_prefers_long_queues(self):
        links = make_planar_links(6, alpha=3.0, seed=1)
        from repro.core.affectance import affectance_matrix
        from repro.core.power import uniform_power

        a = affectance_matrix(links, uniform_power(links), clip=False)
        queues = np.array([0.0, 5.0, 0.0, 1.0, 0.0, 0.0])
        chosen = lqf_policy(queues, a, np.random.default_rng(1))
        assert 1 in chosen
        assert all(queues[v] > 0 for v in chosen)

    def test_lqf_returns_feasible_sets(self):
        links = make_planar_links(10, alpha=3.0, seed=2)
        from repro.core.affectance import affectance_matrix
        from repro.core.feasibility import is_feasible
        from repro.core.power import uniform_power

        powers = uniform_power(links)
        a = affectance_matrix(links, powers, clip=False)
        queues = np.ones(10) * 3.0
        chosen = lqf_policy(queues, a, np.random.default_rng(2))
        assert is_feasible(links, list(chosen), powers)

    def test_lqf_vectorized_matches_historical_loop(self):
        """The per-admission batching must not change a single decision."""
        from repro.core.affectance import affectance_matrix
        from repro.core.power import uniform_power

        rng = np.random.default_rng(17)
        for _ in range(60):
            m = int(rng.integers(2, 25))
            links = make_planar_links(
                m, alpha=3.0, seed=int(rng.integers(1 << 30)), extent=8.0
            )
            a = affectance_matrix(links, uniform_power(links), clip=False)
            queues = np.floor(rng.random(m) * 4)
            got = lqf_policy(queues, a, rng)
            want = _lqf_reference(queues, a, rng)
            assert np.array_equal(got, want)

    def test_random_policy_subset_of_backlogged(self):
        links = make_planar_links(8, alpha=3.0, seed=3)
        from repro.core.affectance import affectance_matrix
        from repro.core.power import uniform_power

        a = affectance_matrix(links, uniform_power(links), clip=False)
        queues = np.array([1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0])
        chosen = random_policy(queues, a, np.random.default_rng(3))
        assert all(queues[v] > 0 for v in chosen)


class TestSimulation:
    def test_no_arrivals_empty_queues(self):
        links = make_planar_links(5, alpha=3.0, seed=4)
        result = run_queue_simulation(links, 0.0, 200, seed=5)
        assert result.delivered == 0
        assert np.all(result.final_queues == 0)
        assert result.drift == pytest.approx(0.0, abs=1e-9)

    def test_low_load_stable(self):
        links = make_planar_links(8, alpha=3.0, seed=6)
        rate = 0.4 / schedule_first_fit(links).length
        result = run_queue_simulation(links, rate, 3000, seed=7)
        assert result.drift < 0.05
        assert result.final_queues.mean() < 5.0

    def test_overload_unstable(self):
        links = make_planar_links(8, alpha=3.0, seed=6)
        result = run_queue_simulation(links, 1.0, 3000, seed=8)
        assert result.drift > 0.1
        assert result.final_queues.mean() > 10.0

    def test_lqf_beats_random_backoff(self):
        links = make_planar_links(8, alpha=3.0, seed=9)
        rate = 0.8 / schedule_first_fit(links).length
        lqf = run_queue_simulation(links, rate, 2500, policy=lqf_policy, seed=10)
        rnd = run_queue_simulation(
            links, rate, 2500, policy=random_policy, seed=10
        )
        assert lqf.final_queues.mean() <= rnd.final_queues.mean()

    def test_throughput_matches_arrivals_when_stable(self):
        links = make_planar_links(6, alpha=3.0, seed=11)
        rate = 0.3 / schedule_first_fit(links).length
        result = run_queue_simulation(links, rate, 4000, seed=12)
        # Delivered ~ arrived (queues stay bounded).
        arrived = rate * 6 * 4000
        assert result.delivered >= 0.9 * (arrived - result.final_queues.sum())

    def test_deterministic(self):
        links = make_planar_links(5, alpha=3.0, seed=13)
        a = run_queue_simulation(links, 0.2, 500, seed=14)
        b = run_queue_simulation(links, 0.2, 500, seed=14)
        assert a.delivered == b.delivered
        assert np.array_equal(a.final_queues, b.final_queues)

    def test_validation(self):
        links = make_planar_links(4, alpha=3.0, seed=15)
        with pytest.raises(SimulationError):
            run_queue_simulation(links, 1.5, 100)
        with pytest.raises(SimulationError):
            run_queue_simulation(links, 0.5, 0)
        with pytest.raises(SimulationError):
            run_queue_simulation(links, 0.5, 100, sample_every=0)

    def test_shared_context_is_equivalent_and_checked(self):
        links = make_planar_links(6, alpha=3.0, seed=16)
        ctx = SchedulingContext(links)
        plain = run_queue_simulation(links, 0.2, 400, seed=17)
        shared = run_queue_simulation(links, 0.2, 400, seed=17, context=ctx)
        assert plain.delivered == shared.delivered
        assert np.array_equal(plain.final_queues, shared.final_queues)
        other = make_planar_links(6, alpha=3.0, seed=99)
        with pytest.raises(LinkError):
            run_queue_simulation(
                links, 0.2, 50, seed=17, context=SchedulingContext(other)
            )


class TestChurnMode:
    def _scenario(self, seed=21, n_links=10, horizon=600):
        return build_dynamic_scenario(
            "poisson_churn",
            n_links=n_links,
            seed=seed,
            horizon=horizon,
            churn_rate=0.1,
            substrate="planar_uniform",
        )

    def test_churn_run_is_deterministic(self):
        scn = self._scenario()
        links = scn.initial_links()
        a = run_queue_simulation(links, 0.1, scn.horizon, churn=scn, seed=22)
        b = run_queue_simulation(links, 0.1, scn.horizon, churn=scn, seed=22)
        assert a.delivered == b.delivered
        assert a.dropped == b.dropped
        assert np.array_equal(a.final_queues, b.final_queues)
        assert np.array_equal(
            a.mean_queue_trajectory, b.mean_queue_trajectory
        )

    def test_churn_applies_events_and_reports(self):
        scn = self._scenario()
        assert len(scn.events) > 0
        links = scn.initial_links()
        res = run_queue_simulation(links, 0.3, scn.horizon, churn=scn, seed=23)
        assert res.churn_events > 0
        assert res.final_queues.shape == (scn.m0,)  # population preserved
        assert res.delivered > 0

    def test_churn_stable_at_low_load(self):
        scn = self._scenario()
        links = scn.initial_links()
        rate = 0.4 / schedule_first_fit(links).length
        res = run_queue_simulation(
            links, rate, scn.horizon, churn=scn, seed=24
        )
        assert res.drift < 0.1

    def test_mobility_trace_runs(self):
        scn = build_dynamic_scenario(
            "random_waypoint", n_links=8, seed=25, horizon=400
        )
        links = scn.initial_links()
        res = run_queue_simulation(links, 0.1, scn.horizon, churn=scn, seed=26)
        assert res.churn_events == len(scn.events)
        assert res.final_queues.shape == (8,)  # moves preserve population

    def test_event_list_accepted_directly(self):
        scn = self._scenario()
        links = scn.initial_links()
        via_scenario = run_queue_simulation(
            links, 0.2, scn.horizon, churn=scn, seed=27
        )
        via_events = run_queue_simulation(
            links, 0.2, scn.horizon, churn=scn.events, seed=27
        )
        assert via_scenario.delivered == via_events.delivered
        assert np.array_equal(
            via_scenario.final_queues, via_events.final_queues
        )


class TestRepairSchedulerMode:
    def _scenario(self, seed=31, n_links=10, horizon=600):
        return build_dynamic_scenario(
            "poisson_churn",
            n_links=n_links,
            seed=seed,
            horizon=horizon,
            churn_rate=0.1,
            substrate="planar_uniform",
        )

    def test_repair_mode_serves_and_reports(self):
        scn = self._scenario()
        links = scn.initial_links()
        res = run_queue_simulation(
            links, 0.2, scn.horizon, churn=scn, seed=32, scheduler="repair"
        )
        assert res.delivered > 0
        assert res.churn_events > 0
        assert res.schedule_slots >= 1
        assert np.isfinite(res.repair_ratio) and res.repair_ratio >= 1.0
        assert res.scheduler_rebuilds == 0  # repair never re-anchors

    def test_rebuild_mode_reanchors_every_event(self):
        scn = self._scenario()
        links = scn.initial_links()
        res = run_queue_simulation(
            links, 0.2, scn.horizon, churn=scn, seed=33, scheduler="rebuild"
        )
        assert res.scheduler_rebuilds == res.churn_events
        assert res.repair_ratio == 1.0  # fresh first-fit by definition

    def test_repair_mode_stable_at_low_load(self):
        scn = self._scenario()
        links = scn.initial_links()
        rate = 0.4 / schedule_first_fit(links).length
        res = run_queue_simulation(
            links, rate, scn.horizon, churn=scn, seed=34, scheduler="repair"
        )
        assert res.drift < 0.1

    def test_repair_mode_deterministic(self):
        scn = self._scenario()
        links = scn.initial_links()
        a = run_queue_simulation(
            links, 0.2, scn.horizon, churn=scn, seed=35, scheduler="repair"
        )
        b = run_queue_simulation(
            links, 0.2, scn.horizon, churn=scn, seed=35, scheduler="repair"
        )
        assert a.delivered == b.delivered
        assert np.array_equal(a.final_queues, b.final_queues)

    def test_repair_mode_without_churn_is_static_tdma(self):
        """A churn-free repair run is a fixed first-fit TDMA rotation."""
        links = make_planar_links(8, alpha=3.0, seed=36)
        slots = schedule_first_fit(links).length
        rate = 0.5 / slots
        res = run_queue_simulation(
            links, rate, 2000, seed=37, scheduler="repair"
        )
        assert res.schedule_slots == slots
        assert res.churn_events == 0
        assert res.drift < 0.1
        assert res.delivered > 0

    def test_unknown_scheduler_rejected(self):
        links = make_planar_links(4, alpha=3.0, seed=38)
        with pytest.raises(SimulationError, match="scheduler"):
            run_queue_simulation(links, 0.2, 50, scheduler="bogus")

    def test_policy_runs_report_nan_ratio(self):
        links = make_planar_links(4, alpha=3.0, seed=39)
        res = run_queue_simulation(links, 0.2, 50, seed=40)
        assert np.isnan(res.repair_ratio)
        assert res.schedule_slots == 0

    def test_custom_policy_with_scheduler_rejected(self):
        links = make_planar_links(4, alpha=3.0, seed=41)
        with pytest.raises(SimulationError, match="custom policy"):
            run_queue_simulation(
                links, 0.2, 50, policy=random_policy, scheduler="repair"
            )

    def test_cascade_with_policy_mode_rejected(self):
        """Regression: cascade= used to be silently dropped in policy mode."""
        links = make_planar_links(4, alpha=3.0, seed=42)
        with pytest.raises(SimulationError, match="scheduler='policy'"):
            run_queue_simulation(links, 0.2, 50, cascade=3)

    def test_nonpositive_shard_count_rejected(self):
        """Regression: shards=0 used to surface as a confusing complaint
        about the backend of the context it would have been applied to."""
        links = make_planar_links(4, alpha=3.0, seed=43)
        for bad in (0, -2):
            with pytest.raises(SimulationError, match="shards must be >= 1"):
                run_queue_simulation(
                    links, 0.2, 50, scheduler="repair", shards=bad
                )
