"""Tests for the queueing/stability simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.scheduling import schedule_first_fit
from repro.distributed.stability import (
    lqf_policy,
    random_policy,
    run_queue_simulation,
)
from repro.errors import SimulationError
from tests.conftest import make_planar_links


class TestPolicies:
    def test_lqf_prefers_long_queues(self):
        links = make_planar_links(6, alpha=3.0, seed=1)
        from repro.core.affectance import affectance_matrix
        from repro.core.power import uniform_power

        a = affectance_matrix(links, uniform_power(links), clip=False)
        queues = np.array([0.0, 5.0, 0.0, 1.0, 0.0, 0.0])
        chosen = lqf_policy(queues, a, np.random.default_rng(1))
        assert 1 in chosen
        assert all(queues[v] > 0 for v in chosen)

    def test_lqf_returns_feasible_sets(self):
        links = make_planar_links(10, alpha=3.0, seed=2)
        from repro.core.affectance import affectance_matrix
        from repro.core.feasibility import is_feasible
        from repro.core.power import uniform_power

        powers = uniform_power(links)
        a = affectance_matrix(links, powers, clip=False)
        queues = np.ones(10) * 3.0
        chosen = lqf_policy(queues, a, np.random.default_rng(2))
        assert is_feasible(links, list(chosen), powers)

    def test_random_policy_subset_of_backlogged(self):
        links = make_planar_links(8, alpha=3.0, seed=3)
        from repro.core.affectance import affectance_matrix
        from repro.core.power import uniform_power

        a = affectance_matrix(links, uniform_power(links), clip=False)
        queues = np.array([1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0])
        chosen = random_policy(queues, a, np.random.default_rng(3))
        assert all(queues[v] > 0 for v in chosen)


class TestSimulation:
    def test_no_arrivals_empty_queues(self):
        links = make_planar_links(5, alpha=3.0, seed=4)
        result = run_queue_simulation(links, 0.0, 200, seed=5)
        assert result.delivered == 0
        assert np.all(result.final_queues == 0)
        assert result.drift == pytest.approx(0.0, abs=1e-9)

    def test_low_load_stable(self):
        links = make_planar_links(8, alpha=3.0, seed=6)
        rate = 0.4 / schedule_first_fit(links).length
        result = run_queue_simulation(links, rate, 3000, seed=7)
        assert result.drift < 0.05
        assert result.final_queues.mean() < 5.0

    def test_overload_unstable(self):
        links = make_planar_links(8, alpha=3.0, seed=6)
        result = run_queue_simulation(links, 1.0, 3000, seed=8)
        assert result.drift > 0.1
        assert result.final_queues.mean() > 10.0

    def test_lqf_beats_random_backoff(self):
        links = make_planar_links(8, alpha=3.0, seed=9)
        rate = 0.8 / schedule_first_fit(links).length
        lqf = run_queue_simulation(links, rate, 2500, policy=lqf_policy, seed=10)
        rnd = run_queue_simulation(
            links, rate, 2500, policy=random_policy, seed=10
        )
        assert lqf.final_queues.mean() <= rnd.final_queues.mean()

    def test_throughput_matches_arrivals_when_stable(self):
        links = make_planar_links(6, alpha=3.0, seed=11)
        rate = 0.3 / schedule_first_fit(links).length
        result = run_queue_simulation(links, rate, 4000, seed=12)
        # Delivered ~ arrived (queues stay bounded).
        arrived = rate * 6 * 4000
        assert result.delivered >= 0.9 * (arrived - result.final_queues.sum())

    def test_deterministic(self):
        links = make_planar_links(5, alpha=3.0, seed=13)
        a = run_queue_simulation(links, 0.2, 500, seed=14)
        b = run_queue_simulation(links, 0.2, 500, seed=14)
        assert a.delivered == b.delivered
        assert np.array_equal(a.final_queues, b.final_queues)

    def test_validation(self):
        links = make_planar_links(4, alpha=3.0, seed=15)
        with pytest.raises(SimulationError):
            run_queue_simulation(links, 1.5, 100)
        with pytest.raises(SimulationError):
            run_queue_simulation(links, 0.5, 0)
        with pytest.raises(SimulationError):
            run_queue_simulation(links, 0.5, 100, sample_every=0)
