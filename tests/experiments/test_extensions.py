"""Integration tests for the E14-E16 extension experiments."""

from __future__ import annotations

import pytest

from repro.experiments.exp_extensions import (
    aggregation_table,
    inductive_independence_table,
    rayleigh_gap_table,
    stability_table,
)


class TestE14Rayleigh:
    def test_feasible_sets_survive_fading(self):
        table = rayleigh_gap_table(alphas=(3.0, 4.0), n_links=10)
        for p_min in table.column("min P[success]"):
            assert p_min >= 0.25  # Omega(1), comfortably
        for mean in table.column("mean P[success]"):
            assert mean >= 0.5


class TestE15Inductive:
    def test_rho_small_everywhere(self):
        table = inductive_independence_table(n_links=10)
        for rho in table.column("rho"):
            assert 0 <= rho <= 5


class TestE16Aggregation:
    def test_all_feasible_and_logarithmic(self):
        table = aggregation_table(n_nodes=12)
        assert all(table.column("all feasible"))
        for levels, n in zip(table.column("levels"), table.column("n")):
            assert levels < n

    def test_stability_shape(self):
        table = stability_table(n_links=8, slots=2500)
        drifts = table.column("LQF drift")
        # Stable at half load, unstable at 1.5x (row 2); the trailing
        # rows are the waypoint-churn run, the repair-TDMA run, and the
        # capacity-repair TDMA run at half load — all must stay stable.
        assert drifts[0] < 0.1
        assert drifts[2] > 0.1
        labels = table.column("load (x 1/T)")
        assert labels[-3] == "0.5 (waypoint churn)"
        assert labels[-2] == "0.5 (churn, repair TDMA)"
        assert labels[-1] == "0.5 (churn, capacity TDMA)"
        assert drifts[-3] < 0.1
        assert drifts[-2] < 0.1
        assert drifts[-1] < 0.1
        rnd = table.column("random drift")
        assert rnd[2] >= drifts[0]
        # The per-event-rebuild TDMA baselines (repair and capacity
        # rows, last column) are stable too — repair loses nothing to
        # full rebuilds here.
        assert rnd[-2] < 0.1
        assert rnd[-1] < 0.1
