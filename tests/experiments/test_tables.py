"""Integration tests: every experiment table builds and its claims hold."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import ExperimentTable, format_table
from repro.experiments.exp_capacity import (
    alpha_sweep_table,
    environment_capacity_table,
)
from repro.experiments.exp_distributed import (
    local_broadcast_table,
    regret_capacity_table,
)
from repro.experiments.exp_fading import fading_bound_table, star_space_table
from repro.experiments.exp_hardness import theorem3_table, theorem6_table
from repro.experiments.exp_metricity import (
    environment_metricity_table,
    geometric_metricity_table,
    three_point_growth_table,
    zeta_phi_relation_table,
)
from repro.experiments.exp_structure import (
    amicability_table,
    separation_table,
    signal_strengthening_table,
)
from repro.experiments.exp_theory_transfer import theory_transfer_table


class TestInfrastructure:
    def test_add_row_validates_width(self):
        t = ExperimentTable("X", "t", "c", columns=["a", "b"])
        with pytest.raises(ValueError, match="columns"):
            t.add_row(1)

    def test_cell_and_column(self):
        t = ExperimentTable("X", "t", "c", columns=["a", "b"])
        t.add_row(1, 2)
        t.add_row(3, 4)
        assert t.cell(1, "b") == 4
        assert t.column("a") == [1, 3]

    def test_format_contains_everything(self):
        t = ExperimentTable("E0", "demo title", "demo claim", columns=["k"])
        t.add_row(3.14159)
        text = format_table(t)
        assert "E0" in text and "demo title" in text and "demo claim" in text
        assert "3.142" in text


class TestE1Metricity:
    def test_geometric_zeta_equals_alpha(self):
        table = geometric_metricity_table(n=10, alphas=(2.0, 4.0), seed=1)
        for gap in table.column("|zeta - alpha|"):
            assert gap < 5e-3

    def test_environment_raises_zeta(self):
        table = environment_metricity_table(n=10, seed=2)
        zetas = dict(zip(table.column("environment"), table.column("zeta")))
        assert zetas["free space"] == pytest.approx(3.0, abs=5e-3)
        assert zetas["office walls"] > 3.1
        assert zetas["walls + shadowing"] > 3.1


class TestE2Transfer:
    def test_all_transfer_checks_pass(self):
        table = theory_transfer_table(n_links=6, seed=3)
        assert all(table.column("triangle ok"))
        assert all(table.column("greedy feasible (uniform)"))
        assert all(table.column("greedy feasible (mean power)"))


class TestE3E4Fading:
    def test_fading_within_bound_where_applicable(self):
        table = fading_bound_table()
        for value in table.column("within bound"):
            assert value in (True, "n/a")
        # At least one fading row must actually exercise the bound.
        assert True in table.column("within bound")

    def test_star_interference_tracks_1_over_k(self):
        table = star_space_table(ks=(4, 16))
        ratios = table.column("interference * k")
        for r in ratios:
            assert 0.8 <= r <= 1.05


class TestE5E11Hardness:
    def test_theorem3(self):
        table = theorem3_table(sizes=(6,), seed=4)
        assert all(table.column("feas<->indep"))
        assert all(table.column("power-ctrl edges blocked"))
        for cap, mis in zip(table.column("CAPACITY"), table.column("MIS")):
            assert cap == mis
        for z, hi in zip(table.column("zeta"), table.column("lg 2n")):
            assert z <= hi + 0.01

    def test_theorem6(self):
        table = theorem6_table(sizes=(6,), seed=5)
        assert all(table.column("feas<->indep"))
        assert all(table.column("power-ctrl edges blocked"))
        for a_dim in table.column("Assouad dim (fit)"):
            assert a_dim <= 2.0
        for idim in table.column("indep dim"):
            assert idim <= 3


class TestE6E7E8Structure:
    def test_signal_strengthening(self):
        table = signal_strengthening_table(seeds=(1,))
        assert all(table.column("all q-feasible"))
        for classes, bound in zip(table.column("classes"), table.column("bound")):
            assert classes <= bound

    def test_separation(self):
        table = separation_table(seeds=(1, 2))
        assert all(table.column("B.2 holds"))
        assert all(table.column("all zeta-separated"))

    def test_amicability(self):
        table = amicability_table(seeds=(1, 2))
        assert all(table.column("within"))
        for ratio in table.column("ratio"):
            assert ratio > 0


class TestE9Capacity:
    def test_alpha_sweep_feasible_and_bounded_ratio(self):
        table = alpha_sweep_table(alphas=(3.0,), n_links=10, trials=1, seed=6)
        for ratio in table.column("ratio alg1"):
            assert 1.0 <= ratio <= 10.0

    def test_environment_capacity(self):
        table = environment_capacity_table(n_links=8, trials=1, seed=7)
        assert all(table.column("feasible"))
        for ratio in table.column("ratio"):
            assert ratio >= 1.0 - 1e-9


class TestE10Relations:
    def test_phi_below_zeta(self):
        table = zeta_phi_relation_table(n=8, trials=4, seed=8)
        assert all(table.column("phi <= zeta"))

    def test_three_point_growth(self):
        table = three_point_growth_table(qs=(100.0, 1e6))
        zetas = table.column("zeta")
        assert zetas[1] > zetas[0]
        for v in table.column("varphi"):
            assert v < 2.0


class TestE12E13Distributed:
    def test_local_broadcast_completes(self):
        table = local_broadcast_table(
            trials=1, seed=9, max_slots=12000, n_nodes=10
        )
        assert all(table.column("completed"))
        assert len(table.rows) == 4
        # Registry-driven: the rows are scenario names.
        assert "corridor" in table.column("space")

    def test_regret_capacity_positive(self):
        table = regret_capacity_table(
            scenarios=("planar_uniform",),
            dynamic=("poisson_churn",),
            n_links=8,
            rounds=300,
            seed=10,
        )
        assert table.column("scenario") == [
            "planar_uniform",
            "poisson_churn",
            "poisson_churn (repair)",
            "poisson_churn (capacity repair)",
        ]
        for frac in table.column("best/centralized"):
            assert frac >= 0.5
