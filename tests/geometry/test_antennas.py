"""Tests for repro.geometry.antennas."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.antennas import (
    AntennaArray,
    cardioid_pattern,
    omni_pattern,
    sector_pattern,
)


class TestPatterns:
    def test_omni_unit_everywhere(self):
        pattern = omni_pattern()
        theta = np.linspace(-np.pi, np.pi, 17)
        assert np.allclose(pattern(theta), 1.0)

    def test_cardioid_boresight_and_back(self):
        pattern = cardioid_pattern(front_to_back_db=10.0)
        assert pattern(np.array([0.0]))[0] == pytest.approx(1.0)
        assert pattern(np.array([np.pi]))[0] == pytest.approx(0.1)

    def test_cardioid_monotone_from_boresight(self):
        pattern = cardioid_pattern(12.0)
        theta = np.linspace(0, np.pi, 20)
        g = pattern(theta)
        assert np.all(np.diff(g) <= 1e-12)

    def test_cardioid_validation(self):
        with pytest.raises(GeometryError):
            cardioid_pattern(-3.0)

    def test_sector_inside_outside(self):
        pattern = sector_pattern(np.pi / 2, sidelobe_db=20.0)
        assert pattern(np.array([0.0]))[0] == 1.0
        assert pattern(np.array([np.pi / 4 - 1e-9]))[0] == 1.0
        assert pattern(np.array([np.pi / 2]))[0] == pytest.approx(0.01)

    def test_sector_wraps_angles(self):
        pattern = sector_pattern(np.pi / 2)
        assert pattern(np.array([2 * np.pi]))[0] == 1.0

    def test_sector_validation(self):
        with pytest.raises(GeometryError):
            sector_pattern(0.0)


class TestAntennaArray:
    def test_omni_array_is_neutral(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 2.0]])
        arr = AntennaArray(pts, np.zeros(3), omni_pattern())
        assert np.allclose(arr.gain_matrix(), 1.0)

    def test_facing_pair_gains_more(self):
        # Node 0 faces east towards node 1; node 1 faces west towards node 0.
        pts = np.array([[0.0, 0.0], [4.0, 0.0]])
        arr = AntennaArray(pts, np.array([0.0, np.pi]), cardioid_pattern(20.0))
        g = arr.gain_matrix()
        assert g[0, 1] == pytest.approx(1.0)
        assert g[1, 0] == pytest.approx(1.0)

    def test_back_to_back_pair_attenuated(self):
        pts = np.array([[0.0, 0.0], [4.0, 0.0]])
        arr = AntennaArray(pts, np.array([np.pi, 0.0]), cardioid_pattern(20.0))
        g = arr.gain_matrix()
        assert g[0, 1] == pytest.approx(0.01 * 0.01)

    def test_shared_pattern_gain_is_symmetric(self):
        # One shared pattern: the tx*rx product is the same in both
        # directions, whatever the orientations.
        pts = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]])
        arr = AntennaArray(pts, np.array([0.0, np.pi / 2, 1.0]),
                           cardioid_pattern(15.0))
        g = arr.gain_matrix()
        assert np.allclose(g, g.T)

    def test_distinct_rx_pattern_asymmetric_decay(self):
        # Directional transmit, omni receive: real-hardware asymmetry.
        pts = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]])
        arr = AntennaArray(
            pts,
            np.array([0.0, np.pi / 2, 1.0]),
            cardioid_pattern(15.0),
            rx_pattern=omni_pattern(),
        )
        decay = np.ones((3, 3)) * 16.0
        np.fill_diagonal(decay, 0.0)
        out = arr.apply(decay)
        assert not np.allclose(out, out.T)

    def test_apply_divides(self):
        pts = np.array([[0.0, 0.0], [4.0, 0.0]])
        arr = AntennaArray(pts, np.array([np.pi, 0.0]), cardioid_pattern(20.0))
        decay = np.array([[0.0, 100.0], [100.0, 0.0]])
        out = arr.apply(decay)
        assert out[0, 1] == pytest.approx(100.0 / (0.01 * 0.01))
        assert np.all(np.diagonal(out) == 0.0)

    def test_random_orientation_deterministic(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 0.0]])
        a = AntennaArray.random(pts, omni_pattern(), seed=3)
        b = AntennaArray.random(pts, omni_pattern(), seed=3)
        assert np.array_equal(a.orientations, b.orientations)

    def test_validation(self):
        with pytest.raises(GeometryError, match="planar"):
            AntennaArray(np.zeros((3, 3)), np.zeros(3), omni_pattern())
        with pytest.raises(GeometryError, match="orientation"):
            AntennaArray(np.zeros((3, 2)), np.zeros(2), omni_pattern())
