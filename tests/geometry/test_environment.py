"""Tests for repro.geometry.environment (walls and floorplans)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.environment import (
    MATERIAL_LOSS_DB,
    Environment,
    Wall,
    office_floorplan,
    segments_intersect,
)
from repro.geometry.pathloss import decay_to_db


class TestWall:
    def test_construction(self):
        wall = Wall.of(0, 0, 1, 0, material="concrete")
        assert wall.loss_db == MATERIAL_LOSS_DB["concrete"]
        assert wall.material == "concrete"

    def test_rejects_degenerate(self):
        with pytest.raises(GeometryError, match="degenerate"):
            Wall((1.0, 1.0), (1.0, 1.0))

    def test_rejects_negative_loss(self):
        with pytest.raises(GeometryError, match="non-negative"):
            Wall((0.0, 0.0), (1.0, 0.0), loss_db=-3.0)

    def test_rejects_unknown_material(self):
        with pytest.raises(GeometryError, match="unknown material"):
            Wall.of(0, 0, 1, 0, material="adamantium")


class TestSegmentIntersection:
    def test_crossing(self):
        p = np.array([[0.0, -1.0]])
        q = np.array([[0.0, 1.0]])
        hit = segments_intersect(p, q, np.array([-1.0, 0.0]), np.array([1.0, 0.0]))
        assert bool(hit[0])

    def test_parallel_miss(self):
        p = np.array([[0.0, 1.0]])
        q = np.array([[1.0, 1.0]])
        hit = segments_intersect(p, q, np.array([0.0, 0.0]), np.array([1.0, 0.0]))
        assert not bool(hit[0])

    def test_collinear_overlap_not_crossing(self):
        p = np.array([[0.0, 0.0]])
        q = np.array([[2.0, 0.0]])
        hit = segments_intersect(p, q, np.array([1.0, 0.0]), np.array([3.0, 0.0]))
        assert not bool(hit[0])

    def test_short_of_wall(self):
        p = np.array([[0.0, -2.0]])
        q = np.array([[0.0, -1.0]])
        hit = segments_intersect(p, q, np.array([-1.0, 0.0]), np.array([1.0, 0.0]))
        assert not bool(hit[0])

    def test_vectorized(self):
        p = np.array([[0.0, -1.0], [5.0, -1.0]])
        q = np.array([[0.0, 1.0], [5.0, 1.0]])
        hit = segments_intersect(p, q, np.array([-1.0, 0.0]), np.array([1.0, 0.0]))
        assert list(hit) == [True, False]


class TestEnvironment:
    def test_wall_crossings_matrix(self):
        env = Environment(alpha=2.0)
        env.add_wall(Wall((1.0, -1.0), (1.0, 1.0), loss_db=6.0))
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [0.5, 0.0]])
        loss = env.wall_crossings(pts)
        assert loss[0, 1] == 6.0 and loss[1, 0] == 6.0
        assert loss[0, 2] == 0.0
        assert np.all(np.diagonal(loss) == 0.0)

    def test_losses_accumulate(self):
        env = Environment(alpha=2.0)
        env.add_wall(Wall((1.0, -1.0), (1.0, 1.0), loss_db=6.0))
        env.add_wall(Wall((1.5, -1.0), (1.5, 1.0), loss_db=4.0))
        pts = np.array([[0.0, 0.0], [2.0, 0.0]])
        assert env.wall_crossings(pts)[0, 1] == 10.0

    def test_decay_matrix_combines(self):
        env = Environment(alpha=2.0)
        env.add_wall(Wall((1.0, -1.0), (1.0, 1.0), loss_db=10.0))
        pts = np.array([[0.0, 0.0], [2.0, 0.0]])
        f = env.decay_matrix(pts)
        # Base 2^2 = 4 times 10 dB = 10x.
        assert f[0, 1] == pytest.approx(40.0)

    def test_custom_base_law(self):
        env = Environment(alpha=2.0, base_law=lambda d: d * 7.0)
        pts = np.array([[0.0, 0.0], [2.0, 0.0]])
        assert env.decay_matrix(pts)[0, 1] == pytest.approx(14.0)

    def test_no_walls_equals_free_space(self):
        env = Environment(alpha=3.0)
        pts = np.array([[0.0, 0.0], [2.0, 0.0]])
        assert env.decay_matrix(pts)[0, 1] == pytest.approx(8.0)


class TestOfficeFloorplan:
    def test_has_exterior_and_interior(self):
        env = office_floorplan(2, 2, room_size=4.0, seed=0)
        # 4 exterior + interior walls (some split in two by doors).
        assert len(env.walls) >= 4 + 2

    def test_same_room_no_loss_cross_room_loss(self):
        env = office_floorplan(2, 1, room_size=4.0, door_fraction=0.0, seed=1)
        pts = np.array([[1.0, 2.0], [3.0, 2.0], [5.0, 2.0]])
        loss = env.wall_crossings(pts)
        assert loss[0, 1] == 0.0  # same room
        assert loss[0, 2] > 0.0  # crosses the x=4 wall

    def test_door_gap_allows_free_path(self):
        env = office_floorplan(2, 1, room_size=4.0, door_fraction=0.99, seed=2)
        pts = np.array([[3.9, 2.0], [4.1, 2.0]])
        # With a nearly full-wall door the straight path is almost surely free.
        assert env.wall_crossings(pts)[0, 1] == 0.0

    def test_deterministic_by_seed(self):
        a = office_floorplan(3, 2, seed=5)
        b = office_floorplan(3, 2, seed=5)
        assert [(w.p1, w.p2) for w in a.walls] == [(w.p1, w.p2) for w in b.walls]

    def test_validation(self):
        with pytest.raises(GeometryError):
            office_floorplan(0, 1)
        with pytest.raises(GeometryError):
            office_floorplan(1, 1, door_fraction=1.0)

    def test_decay_in_db_reasonable(self):
        env = office_floorplan(2, 2, room_size=5.0, seed=3)
        pts = np.array([[2.5, 2.5], [7.5, 7.5]])
        f = env.decay_matrix(pts)
        db = decay_to_db(f[0, 1])
        # Distance ~7m at alpha=3 is ~25 dB; at least one drywall adds 3+.
        assert db > 25.0
