"""Tests for repro.geometry.pathloss."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.pathloss import (
    db_to_decay,
    decay_to_db,
    dual_slope_decay,
    free_space_decay,
    log_distance_decay,
)


class TestConversions:
    def test_known_values(self):
        assert db_to_decay(10.0) == pytest.approx(10.0)
        assert db_to_decay(30.0) == pytest.approx(1000.0)
        assert decay_to_db(100.0) == pytest.approx(20.0)

    def test_roundtrip(self):
        values = np.array([0.5, 1.0, 7.3, 1e4])
        assert np.allclose(db_to_decay(decay_to_db(values)), values)

    def test_decay_to_db_rejects_nonpositive(self):
        with pytest.raises(GeometryError, match="positive"):
            decay_to_db(0.0)


class TestFreeSpace:
    def test_power_law(self):
        d = np.array([[0.0, 2.0], [2.0, 0.0]])
        f = free_space_decay(d, 3.0)
        assert f[0, 1] == pytest.approx(8.0)
        assert f[0, 0] == 0.0

    def test_validation(self):
        with pytest.raises(GeometryError, match="alpha"):
            free_space_decay(np.ones((2, 2)), 0.0)
        with pytest.raises(GeometryError, match="non-negative"):
            free_space_decay(np.array([-1.0]), 2.0)


class TestLogDistance:
    def test_reference_loss(self):
        # At d0 the loss equals loss_at_d0_db.
        f = log_distance_decay(np.array([1.0]), exponent=3.0, d0=1.0,
                               loss_at_d0_db=20.0)
        assert f[0] == pytest.approx(100.0)

    def test_slope(self):
        # 10x distance adds 10*n dB.
        f = log_distance_decay(np.array([1.0, 10.0]), exponent=2.5)
        assert decay_to_db(f[1]) - decay_to_db(f[0]) == pytest.approx(25.0)

    def test_clamps_below_reference(self):
        f = log_distance_decay(np.array([0.01, 1.0]), exponent=3.0, d0=1.0)
        assert f[0] == pytest.approx(f[1])

    def test_zero_distance_zero_decay(self):
        f = log_distance_decay(np.array([0.0]), exponent=3.0)
        assert f[0] == 0.0

    def test_monotone(self):
        d = np.linspace(1.0, 50.0, 40)
        f = log_distance_decay(d, exponent=3.2)
        assert np.all(np.diff(f) > 0)

    def test_validation(self):
        with pytest.raises(GeometryError, match="reference"):
            log_distance_decay(np.ones(1), exponent=2.0, d0=0.0)
        with pytest.raises(GeometryError, match="exponent"):
            log_distance_decay(np.ones(1), exponent=-1.0)


class TestDualSlope:
    def test_continuous_at_breakpoint(self):
        bp = 10.0
        below = dual_slope_decay(np.array([bp - 1e-9]), 2.0, 4.0, bp)
        above = dual_slope_decay(np.array([bp + 1e-9]), 2.0, 4.0, bp)
        assert below[0] == pytest.approx(above[0], rel=1e-6)

    def test_far_slope_steeper(self):
        d = np.array([20.0, 200.0])
        f = dual_slope_decay(d, 2.0, 4.0, breakpoint=10.0)
        gain_db = decay_to_db(f[1]) - decay_to_db(f[0])
        assert gain_db == pytest.approx(40.0)  # 10 * 4 per decade

    def test_near_slope(self):
        d = np.array([1.0, 10.0])
        f = dual_slope_decay(d, 2.0, 4.0, breakpoint=10.0)
        assert decay_to_db(f[1]) - decay_to_db(f[0]) == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(GeometryError, match="breakpoint"):
            dual_slope_decay(np.ones(1), 2.0, 4.0, breakpoint=0.5)
