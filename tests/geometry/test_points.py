"""Tests for repro.geometry.points."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.points import (
    cluster_points,
    grid_points,
    line_points,
    pairwise_distances,
    rng_from,
    separated_points,
    uniform_points,
)


class TestRngFrom:
    def test_passthrough(self):
        gen = np.random.default_rng(1)
        assert rng_from(gen) is gen

    def test_seed(self):
        a = rng_from(7).random()
        b = rng_from(7).random()
        assert a == b


class TestUniform:
    def test_shape_and_bounds(self):
        pts = uniform_points(20, extent=3.0, seed=1)
        assert pts.shape == (20, 2)
        assert pts.min() >= 0.0 and pts.max() <= 3.0

    def test_deterministic(self):
        assert np.array_equal(uniform_points(5, seed=3), uniform_points(5, seed=3))

    def test_dim(self):
        assert uniform_points(4, dim=3, seed=0).shape == (4, 3)

    def test_validation(self):
        with pytest.raises(GeometryError):
            uniform_points(0)
        with pytest.raises(GeometryError):
            uniform_points(5, extent=-1.0)


class TestGrid:
    def test_count_and_spacing(self):
        pts = grid_points(3, spacing=2.0)
        assert pts.shape == (9, 2)
        assert pts.max() == 4.0

    def test_jitter_bounded(self):
        base = grid_points(3, spacing=2.0)
        jit = grid_points(3, spacing=2.0, jitter=0.1, seed=1)
        assert np.all(np.abs(base - jit) <= 0.1 + 1e-12)

    def test_validation(self):
        with pytest.raises(GeometryError):
            grid_points(0)


class TestClusters:
    def test_count(self):
        pts = cluster_points(3, 4, seed=2)
        assert pts.shape == (12, 2)

    def test_clipped_to_extent(self):
        pts = cluster_points(4, 10, extent=1.0, spread=0.5, seed=3)
        assert pts.min() >= 0.0 and pts.max() <= 1.0

    def test_validation(self):
        with pytest.raises(GeometryError):
            cluster_points(0, 5)


class TestSeparated:
    def test_respects_minimum(self):
        pts = separated_points(15, extent=10.0, min_separation=1.0, seed=4)
        d = pairwise_distances(pts)
        np.fill_diagonal(d, np.inf)
        assert d.min() >= 1.0

    def test_impossible_density_raises(self):
        with pytest.raises(GeometryError, match="could not place"):
            separated_points(100, extent=1.0, min_separation=0.5, seed=1,
                             max_tries=200)

    def test_validation(self):
        with pytest.raises(GeometryError):
            separated_points(5, min_separation=0.0)


class TestLineAndDistances:
    def test_line(self):
        pts = line_points(4, spacing=1.5, x0=1.0)
        assert np.allclose(pts[:, 0], [1.0, 2.5, 4.0, 5.5])
        assert np.all(pts[:, 1] == 0.0)

    def test_line_validation(self):
        with pytest.raises(GeometryError):
            line_points(0)

    def test_pairwise_distances(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = pairwise_distances(pts)
        assert d[0, 1] == pytest.approx(5.0)
        assert d[0, 0] == 0.0

    def test_pairwise_validation(self):
        with pytest.raises(GeometryError):
            pairwise_distances(np.array([1.0, 2.0]))
