"""Tests for repro.geometry.raytrace (one-bounce reflections)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.environment import Environment, Wall
from repro.geometry.raytrace import (
    mirror_point,
    multipath_decay_matrix,
    reflection_paths,
)


class TestMirrorPoint:
    def test_across_x_axis(self):
        out = mirror_point(np.array([1.0, 2.0]), np.array([0.0, 0.0]),
                           np.array([5.0, 0.0]))
        assert np.allclose(out, [1.0, -2.0])

    def test_point_on_line_fixed(self):
        out = mirror_point(np.array([2.0, 0.0]), np.array([0.0, 0.0]),
                           np.array([5.0, 0.0]))
        assert np.allclose(out, [2.0, 0.0])

    def test_batch(self):
        pts = np.array([[1.0, 1.0], [2.0, -3.0]])
        out = mirror_point(pts, np.array([0.0, 0.0]), np.array([1.0, 0.0]))
        assert np.allclose(out, [[1.0, -1.0], [2.0, 3.0]])

    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError, match="degenerate"):
            mirror_point(np.array([1.0, 1.0]), np.zeros(2), np.zeros(2))


class TestReflectionPaths:
    def test_valid_bounce(self):
        # tx and rx above a floor wall; specular point between them.
        wall = Wall((-5.0, 0.0), (5.0, 0.0), loss_db=0.0)
        length = reflection_paths(np.array([-1.0, 1.0]), np.array([1.0, 1.0]), wall)
        # Image at (-1, -1) to (1, 1): length sqrt(4 + 4).
        assert length == pytest.approx(np.sqrt(8.0))

    def test_bounce_point_outside_segment(self):
        wall = Wall((10.0, 0.0), (20.0, 0.0), loss_db=0.0)
        assert reflection_paths(
            np.array([-1.0, 1.0]), np.array([1.0, 1.0]), wall
        ) is None

    def test_same_side_requirement(self):
        # Receiver below the wall: the "bounce" degenerates to a crossing.
        wall = Wall((-5.0, 0.0), (5.0, 0.0), loss_db=0.0)
        length = reflection_paths(np.array([-1.0, 1.0]), np.array([1.0, -1.0]), wall)
        # Image of tx is (-1,-1); segment to (1,-1) does not cross the wall.
        assert length is None


class TestMultipath:
    def make_env(self) -> Environment:
        env = Environment(alpha=2.0)
        env.add_wall(Wall((-10.0, -1.0), (10.0, -1.0), loss_db=3.0))
        return env

    def test_zero_coefficient_equals_base(self):
        env = self.make_env()
        pts = np.array([[0.0, 0.0], [4.0, 0.0]])
        base = env.decay_matrix(pts)
        multi = multipath_decay_matrix(pts, env, reflection_coefficient=0.0)
        assert np.allclose(multi, base)

    def test_reflection_reduces_decay(self):
        env = self.make_env()
        pts = np.array([[0.0, 0.0], [4.0, 0.0]])
        base = env.decay_matrix(pts)
        multi = multipath_decay_matrix(pts, env, reflection_coefficient=0.5)
        assert multi[0, 1] < base[0, 1]
        assert multi[1, 0] < base[1, 0]

    def test_diagonal_stays_zero(self):
        env = self.make_env()
        pts = np.array([[0.0, 0.0], [4.0, 0.0]])
        multi = multipath_decay_matrix(pts, env, reflection_coefficient=0.5)
        assert np.all(np.diagonal(multi) == 0.0)

    def test_validation(self):
        env = self.make_env()
        pts = np.array([[0.0, 0.0], [4.0, 0.0]])
        with pytest.raises(GeometryError, match="coefficient"):
            multipath_decay_matrix(pts, env, reflection_coefficient=1.5)

    def test_can_break_distance_monotonicity(self):
        """The paper's motivation: with reflections, nearer is not stronger.

        A receiver close to a reflective wall can see a lower decay than a
        nearer receiver far from the wall.
        """
        env = Environment(alpha=2.0)
        env.add_wall(Wall((-50.0, -0.1), (50.0, -0.1), loss_db=0.0))
        # tx at origin; rx_near at distance 4 but high above the wall
        # (weak bounce), rx_far at distance 5 hugging the wall (strong
        # bounce).
        pts = np.array([[0.0, 0.0], [0.0, 4.0], [5.0, 0.0]])
        f = multipath_decay_matrix(pts, env, reflection_coefficient=0.9)
        d_near = np.linalg.norm(pts[1] - pts[0])
        d_far = np.linalg.norm(pts[2] - pts[0])
        assert d_near < d_far
        # Decay need not follow distance ordering once bounces add up; the
        # far-but-wall-hugging receiver decays no worse than proportionally.
        ratio_multipath = f[0, 2] / f[0, 1]
        ratio_geometric = (d_far / d_near) ** 2
        assert ratio_multipath < ratio_geometric
