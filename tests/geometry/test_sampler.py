"""Tests for repro.geometry.sampler (measurements and the build pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decay import DecaySpace
from repro.errors import GeometryError
from repro.geometry.antennas import AntennaArray, cardioid_pattern, omni_pattern
from repro.geometry.environment import Environment, Wall
from repro.geometry.pathloss import decay_to_db
from repro.geometry.points import uniform_points
from repro.geometry.sampler import (
    MeasurementModel,
    build_environment_space,
    measure_decay_space,
)


class TestMeasurementModel:
    def test_validation(self):
        with pytest.raises(GeometryError):
            MeasurementModel(noise_db=-1.0)
        with pytest.raises(GeometryError):
            MeasurementModel(floor_db=0.0)

    def test_noiseless_quantization_only(self):
        space = DecaySpace(np.array([[0.0, 123.0], [123.0, 0.0]]))
        model = MeasurementModel(noise_db=0.0, quantization_db=1.0)
        out = measure_decay_space(space, model, seed=1)
        db = decay_to_db(out.f[0, 1])
        assert db == pytest.approx(round(10.0 * np.log10(123.0)))

    def test_noise_makes_asymmetric(self):
        pts = uniform_points(8, extent=10.0, seed=1)
        space = DecaySpace.from_points(pts, 3.0)
        out = measure_decay_space(
            space, MeasurementModel(noise_db=2.0, quantization_db=0.0), seed=2
        )
        assert not out.is_symmetric()

    def test_floor_clamps_large_losses(self):
        space = DecaySpace(np.array([[0.0, 1e15], [1e15, 0.0]]))
        model = MeasurementModel(noise_db=0.0, quantization_db=0.0, floor_db=100.0)
        out = measure_decay_space(space, model, seed=1)
        assert out.f[0, 1] == pytest.approx(1e10)

    def test_valid_decay_space_output(self):
        pts = uniform_points(10, extent=5.0, seed=3)
        space = DecaySpace.from_points(pts, 3.0)
        out = measure_decay_space(space, MeasurementModel(), seed=4)
        assert out.n == space.n  # construction re-validates axioms

    def test_deterministic(self):
        pts = uniform_points(6, extent=5.0, seed=3)
        space = DecaySpace.from_points(pts, 3.0)
        a = measure_decay_space(space, MeasurementModel(), seed=7)
        b = measure_decay_space(space, MeasurementModel(), seed=7)
        assert a == b


class TestBuildPipeline:
    def test_plain_environment_matches_geo(self):
        pts = uniform_points(8, extent=10.0, seed=5)
        space = build_environment_space(pts, Environment(alpha=3.0))
        geo = DecaySpace.from_points(pts, 3.0)
        assert np.allclose(space.f, geo.f)

    def test_walls_increase_decay(self):
        env = Environment(alpha=3.0)
        env.add_wall(Wall((5.0, -100.0), (5.0, 100.0), loss_db=10.0))
        pts = np.array([[0.0, 0.0], [10.0, 0.0]])
        space = build_environment_space(pts, env)
        geo = DecaySpace.from_points(pts, 3.0)
        assert space.f[0, 1] == pytest.approx(10.0 * geo.f[0, 1])

    def test_shadowing_stage(self):
        pts = uniform_points(8, extent=10.0, seed=6)
        a = build_environment_space(
            pts, Environment(alpha=3.0), shadowing_sigma_db=6.0, seed=1
        )
        b = build_environment_space(pts, Environment(alpha=3.0))
        assert not np.allclose(a.f, b.f)

    def test_antenna_stage(self):
        pts = uniform_points(6, extent=10.0, seed=7)
        antennas = AntennaArray.random(pts, cardioid_pattern(10.0), seed=2)
        a = build_environment_space(pts, Environment(alpha=3.0), antennas=antennas)
        b = build_environment_space(pts, Environment(alpha=3.0))
        assert not np.allclose(a.f, b.f)

    def test_omni_antennas_neutral(self):
        pts = uniform_points(6, extent=10.0, seed=7)
        antennas = AntennaArray.random(pts, omni_pattern(), seed=2)
        a = build_environment_space(pts, Environment(alpha=3.0), antennas=antennas)
        b = build_environment_space(pts, Environment(alpha=3.0))
        assert np.allclose(a.f, b.f)

    def test_measurement_stage(self):
        pts = uniform_points(6, extent=10.0, seed=8)
        a = build_environment_space(
            pts,
            Environment(alpha=3.0),
            measurement=MeasurementModel(noise_db=1.0),
            seed=3,
        )
        b = build_environment_space(pts, Environment(alpha=3.0))
        assert not np.allclose(a.f, b.f)

    def test_full_pipeline_deterministic(self):
        pts = uniform_points(6, extent=10.0, seed=9)
        env = Environment(alpha=3.0)
        kwargs = dict(
            reflection_coefficient=0.3,
            shadowing_sigma_db=4.0,
            shadowing_correlation=3.0,
            measurement=MeasurementModel(),
        )
        a = build_environment_space(pts, env, seed=11, **kwargs)
        b = build_environment_space(pts, env, seed=11, **kwargs)
        assert a == b

    def test_realism_raises_metricity(self):
        """The paper's premise: environments push zeta above alpha."""
        pts = uniform_points(10, extent=12.0, seed=10)
        env = Environment(alpha=3.0)
        env.add_wall(Wall((6.0, -100.0), (6.0, 100.0), loss_db=15.0))
        geo = DecaySpace.from_points(pts, 3.0)
        realistic = build_environment_space(
            pts, env, shadowing_sigma_db=6.0, seed=12
        )
        assert realistic.metricity() > geo.metricity() + 0.2
