"""Tests for repro.geometry.shadowing (Gudmundson model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.points import uniform_points
from repro.geometry.shadowing import (
    apply_shadowing,
    shadowing_db_matrix,
    shadowing_field,
)


class TestField:
    def test_deterministic(self):
        pts = uniform_points(10, seed=1)
        a = shadowing_field(pts, 6.0, 2.0, seed=9)
        b = shadowing_field(pts, 6.0, 2.0, seed=9)
        assert np.array_equal(a, b)

    def test_zero_sigma_zero_field(self):
        pts = uniform_points(6, seed=1)
        field = shadowing_field(pts, 0.0, 2.0, seed=2)
        assert np.allclose(field, 0.0)

    def test_spatial_correlation(self):
        """Nearby nodes get similar shadowing; distant ones decorrelate."""
        # Two tight clusters far apart; average within/between differences.
        rng = np.random.default_rng(0)
        within, between = [], []
        for seed in range(40):
            pts = np.array([[0.0, 0.0], [0.1, 0.0], [100.0, 0.0], [100.1, 0.0]])
            field = shadowing_field(pts, 8.0, correlation_distance=5.0, seed=seed)
            within.append(abs(field[0] - field[1]))
            within.append(abs(field[2] - field[3]))
            between.append(abs(field[0] - field[2]))
        assert np.mean(within) < np.mean(between)
        _ = rng

    def test_marginal_std(self):
        pts = uniform_points(40, extent=1000.0, seed=3)
        field = shadowing_field(pts, 6.0, correlation_distance=1.0, seed=4)
        # Nearly independent values: sample std near sigma.
        assert 3.0 < field.std() < 9.0

    def test_validation(self):
        pts = uniform_points(4, seed=1)
        with pytest.raises(GeometryError, match="sigma"):
            shadowing_field(pts, -1.0, 2.0)
        with pytest.raises(GeometryError, match="correlation"):
            shadowing_field(pts, 1.0, 0.0)


class TestPairwiseMatrix:
    def test_symmetric_without_asymmetry(self):
        pts = uniform_points(8, seed=2)
        m = shadowing_db_matrix(pts, 6.0, 2.0, seed=5)
        assert np.allclose(m, m.T)
        assert np.all(np.diagonal(m) == 0.0)

    def test_asymmetry_term(self):
        pts = uniform_points(8, seed=2)
        m = shadowing_db_matrix(pts, 6.0, 2.0, asymmetry_db=2.0, seed=5)
        assert not np.allclose(m, m.T)

    def test_deterministic(self):
        pts = uniform_points(5, seed=2)
        a = shadowing_db_matrix(pts, 4.0, 2.0, asymmetry_db=1.0, seed=11)
        b = shadowing_db_matrix(pts, 4.0, 2.0, asymmetry_db=1.0, seed=11)
        assert np.array_equal(a, b)


class TestApply:
    def test_multiplies_in_db(self):
        decay = np.array([[0.0, 100.0], [100.0, 0.0]])
        shadow = np.array([[0.0, 10.0], [-10.0, 0.0]])
        out = apply_shadowing(decay, shadow)
        assert out[0, 1] == pytest.approx(1000.0)
        assert out[1, 0] == pytest.approx(10.0)

    def test_diagonal_preserved(self):
        decay = np.array([[0.0, 100.0], [100.0, 0.0]])
        shadow = np.full((2, 2), 3.0)
        out = apply_shadowing(decay, shadow)
        assert np.all(np.diagonal(out) == 0.0)
