"""Tests for the Theorem-3 equi-decay construction."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core.metricity import metricity
from repro.core.power import uniform_power
from repro.core.feasibility import is_feasible
from repro.errors import ReproError
from repro.hardness.equidecay import equidecay_instance
from repro.hardness.reductions import (
    capacity_equals_mis,
    edge_pairs_power_infeasible,
    verify_feasible_iff_independent,
)


class TestConstruction:
    def test_shape(self):
        inst = equidecay_instance(nx.path_graph(5))
        assert inst.space.n == 10
        assert inst.links.m == 5
        assert inst.sender(2) == 2 and inst.receiver(2) == 7

    def test_unit_signal_decay(self):
        inst = equidecay_instance(nx.path_graph(5))
        assert np.allclose(inst.links.lengths, 1.0)

    def test_cross_decays(self):
        g = nx.Graph([(0, 1)])
        g.add_node(2)
        inst = equidecay_instance(g, edge_decay=0.5)
        cross = inst.links.cross_decay
        assert cross[0, 1] == 0.5  # edge
        assert cross[0, 2] == 3.0  # non-edge: decay n = 3
        assert cross[1, 0] == 0.5

    def test_symmetric_cross_decay(self):
        inst = equidecay_instance(nx.cycle_graph(5))
        assert inst.space.is_symmetric()

    def test_relabels_nodes(self):
        g = nx.Graph([("a", "b"), ("b", "c")])
        inst = equidecay_instance(g)
        assert inst.n == 3
        assert set(inst.graph.nodes) == {0, 1, 2}

    def test_validation(self):
        with pytest.raises(ReproError, match="two vertices"):
            equidecay_instance(nx.Graph())
        with pytest.raises(ReproError, match="edge decay"):
            equidecay_instance(nx.path_graph(3), edge_decay=1.5)
        with pytest.raises(ReproError, match="filler"):
            equidecay_instance(nx.path_graph(3), filler_decay=0.0)


class TestCorrespondence:
    @pytest.mark.parametrize(
        "graph",
        [
            nx.cycle_graph(6),
            nx.path_graph(6),
            nx.complete_graph(5),
            nx.star_graph(5),
            nx.gnp_random_graph(8, 0.4, seed=1),
        ],
        ids=["cycle", "path", "complete", "star", "gnp"],
    )
    def test_feasible_iff_independent(self, graph):
        inst = equidecay_instance(graph)
        assert verify_feasible_iff_independent(inst.links, inst.graph)

    def test_capacity_equals_mis(self):
        for seed in range(3):
            g = nx.gnp_random_graph(9, 0.5, seed=seed)
            inst = equidecay_instance(g)
            cap, mis = capacity_equals_mis(inst.links, inst.graph)
            assert cap == mis

    def test_edges_blocked_under_power_control(self):
        inst = equidecay_instance(nx.gnp_random_graph(8, 0.5, seed=3))
        assert edge_pairs_power_infeasible(inst.links, inst.graph)

    def test_independent_set_feasible_under_uniform(self):
        g = nx.cycle_graph(8)
        inst = equidecay_instance(g)
        independent = [0, 2, 4, 6]
        assert is_feasible(
            inst.links, independent, uniform_power(inst.links)
        )

    def test_edge_pair_infeasible(self):
        g = nx.cycle_graph(8)
        inst = equidecay_instance(g)
        assert not is_feasible(inst.links, [0, 1], uniform_power(inst.links))


class TestMetricity:
    @pytest.mark.parametrize("n", [6, 10, 14])
    def test_zeta_theta_log_n(self, n):
        """Thm. 3: zeta <= lg 2n, and >= lg n when the binding triple exists."""
        g = nx.gnp_random_graph(n, 0.5, seed=n)
        inst = equidecay_instance(g)
        z = metricity(inst.space)
        assert z <= np.log2(2 * n) + 0.01
        # The lower bound needs a non-edge (i, j) plus k adjacent to j but
        # not i (or the symmetric pattern); G(n, 1/2) has one w.h.p.
        comp = nx.complement(g)
        has_pattern = any(
            any(g.has_edge(k, j) and not g.has_edge(k, i) for k in g.nodes)
            for i, j in comp.edges
        )
        if has_pattern:
            assert z >= np.log2(n) - 0.01
