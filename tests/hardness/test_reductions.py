"""Tests for the MIS <-> CAPACITY verification harness itself."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import ExactComputationError
from repro.hardness.equidecay import equidecay_instance
from repro.hardness.reductions import (
    independence_number,
    maximum_independent_set,
    verify_feasible_iff_independent,
)


class TestMIS:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (nx.cycle_graph(6), 3),
            (nx.cycle_graph(7), 3),
            (nx.complete_graph(5), 1),
            (nx.star_graph(6), 6),
            (nx.path_graph(7), 4),
            (nx.petersen_graph(), 4),
        ],
        ids=["C6", "C7", "K5", "S6", "P7", "petersen"],
    )
    def test_known_independence_numbers(self, graph, expected):
        assert independence_number(graph) == expected

    def test_returned_set_is_independent(self):
        g = nx.gnp_random_graph(12, 0.4, seed=2)
        mis = maximum_independent_set(g)
        for u in mis:
            for v in mis:
                if u != v:
                    assert not g.has_edge(u, v)


class TestVerifier:
    def test_detects_broken_correspondence(self):
        """A deliberately mis-built instance must be caught."""
        g = nx.cycle_graph(5)
        inst = equidecay_instance(g)
        # Verify against the *complement* graph: must fail.
        assert not verify_feasible_iff_independent(
            inst.links, nx.complement(g)
        )

    def test_size_limit(self):
        g = nx.path_graph(20)
        inst = equidecay_instance(g)
        with pytest.raises(ExactComputationError, match="exhaustive"):
            verify_feasible_iff_independent(inst.links, inst.graph)
