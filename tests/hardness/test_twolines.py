"""Tests for the Theorem-6 two-line construction."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core.feasibility import is_feasible
from repro.core.metricity import varphi
from repro.core.power import uniform_power
from repro.errors import ReproError
from repro.hardness.reductions import (
    capacity_equals_mis,
    edge_pairs_power_infeasible,
    verify_feasible_iff_independent,
)
from repro.hardness.twolines import twoline_instance
from repro.spaces.independence import independence_dimension


class TestConstruction:
    def test_shape_and_positions(self):
        inst = twoline_instance(nx.path_graph(5), alpha=2.0)
        assert inst.space.n == 10
        assert inst.links.m == 5
        assert np.allclose(inst.positions[:5, 0], 0.0)
        assert np.allclose(inst.positions[5:, 0], 5.0)

    def test_decay_values(self):
        g = nx.Graph([(0, 1)])
        g.add_node(2)
        inst = twoline_instance(g, alpha=2.0, delta=0.25)
        n = 3
        cross = inst.links.cross_decay
        assert cross[0, 0] == pytest.approx(n)  # signal n^(alpha-1) = 3
        assert cross[0, 1] == pytest.approx(n - 0.25)  # edge
        assert cross[0, 2] == pytest.approx(n**2)  # non-edge
        # Within-line decays: |i - j|^(alpha - 1).
        assert inst.space.decay(0, 1) == pytest.approx(1.0)
        assert inst.space.decay(0, 2) == pytest.approx(2.0)

    def test_alpha_one_unit_within_line(self):
        inst = twoline_instance(nx.path_graph(4), alpha=1.0)
        assert inst.space.decay(0, 3) == pytest.approx(1.0)
        assert inst.alpha_prime == 0.0

    def test_validation(self):
        with pytest.raises(ReproError, match="two vertices"):
            twoline_instance(nx.Graph())
        with pytest.raises(ReproError, match="alpha"):
            twoline_instance(nx.path_graph(3), alpha=0.5)
        with pytest.raises(ReproError, match="delta"):
            twoline_instance(nx.path_graph(3), delta=0.7)


class TestCorrespondence:
    @pytest.mark.parametrize("alpha", [1.0, 2.0, 3.0])
    def test_feasible_iff_independent(self, alpha):
        g = nx.gnp_random_graph(7, 0.4, seed=5)
        inst = twoline_instance(g, alpha=alpha)
        assert verify_feasible_iff_independent(inst.links, inst.graph)

    def test_capacity_equals_mis(self):
        g = nx.petersen_graph()
        inst = twoline_instance(g, alpha=2.0)
        cap, mis = capacity_equals_mis(inst.links, inst.graph)
        assert cap == mis == 4

    def test_edges_blocked_under_power_control(self):
        inst = twoline_instance(nx.gnp_random_graph(8, 0.5, seed=7))
        assert edge_pairs_power_infeasible(inst.links, inst.graph)

    def test_nonedge_affectance_one_over_n(self):
        g = nx.empty_graph(6)
        inst = twoline_instance(g, alpha=2.0)
        # All links independent: whole set feasible with margin (n-1)/n.
        assert is_feasible(
            inst.links, list(range(6)), uniform_power(inst.links)
        )


class TestGrowthProperties:
    def test_varphi_linear_in_n(self):
        """Thm. 6: varphi = O(n)."""
        values = {}
        for n in (6, 10, 14):
            g = nx.gnp_random_graph(n, 0.5, seed=n)
            inst = twoline_instance(g, alpha=2.0)
            values[n] = varphi(inst.space)
            assert values[n] <= 2.0 * n
        assert values[14] > values[6]

    def test_independence_dimension_small(self):
        """Thm. 6 appendix: independence dimension 3 (2 on a line + 1 across)."""
        for seed in (1, 2):
            g = nx.gnp_random_graph(7, 0.5, seed=seed)
            inst = twoline_instance(g, alpha=2.0)
            assert independence_dimension(inst.space) <= 3

    def test_positions_embed_in_plane(self):
        inst = twoline_instance(nx.cycle_graph(6), alpha=2.0)
        assert inst.positions.shape == (12, 2)
