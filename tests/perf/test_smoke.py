"""Performance smoke tests: the vectorized kernels must stay fast.

These guard the headline speedups of the metricity/scheduling kernels.
Budgets are generous — several times the observed times on a single
laptop-class core — so CI noise does not flake them, while a regression to
the pre-vectorized O(n^3)-per-pass behaviour fails loudly.

Two tiers of budgets:

* the PR-1 floors (n=300 metricity, m=150 scheduling; seed implementation
  took ~4 s each) are kept as non-regression guards;
* the scaled tier (n=2000 metricity via the tiered float32-screen scan,
  m=500 end-to-end scheduling on the ``dense_urban`` scenario — 500
  peel rounds through the incremental ledger) pins the order-of-magnitude
  jump of the tiered/incremental kernels.  Every fast path exercised here
  is cross-validated against its slow reference in
  ``tests/core/test_metricity_crossval.py`` and
  ``tests/algorithms/test_scheduling_incremental.py``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.algorithms.context import SchedulingContext
from repro.algorithms.scheduling import schedule_first_fit, schedule_repeated_capacity
from repro.core.decay import DecaySpace
from repro.core.metricity import metricity
from repro.distributed.regret_capacity import run_regret_capacity
from repro.distributed.stability import run_queue_simulation
from repro.dynamics import ChurnDriver
from repro.scenarios import build_dynamic_scenario, build_scenario
from tests.conftest import make_planar_links

#: Wall-clock budgets (seconds).  Seed implementation: ~4 s each.
METRICITY_BUDGET = 2.0
SCHEDULE_BUDGET = 2.0

#: Scaled-tier budgets.  Observed on a single busy-VM core: ~14 s for
#: n=2000 metricity, ~4 s for the m=500 end-to-end schedule (zeta
#: resolution on the 1000-node space included).  Pre-tiered kernels took
#: minutes at these sizes.
METRICITY_N2000_BUDGET = 75.0
SCHEDULE_M500_BUDGET = 45.0
FIRST_FIT_M500_BUDGET = 5.0

#: Distributed-simulation tier (PR-3): m=500 dense_urban runs over a
#: shared context.  Observed on a busy-VM core: ~1.7 s for an 800-slot
#: LQF stability run, ~0.8 s for 800 MWU rounds, ~3.5 s for the churn
#: run including the dynamic-scenario build.  The budgets catch a
#: regression to per-slot Python admission loops or per-call matrix
#: rebuilds (which alone would add ~2 ms x slots).
STABILITY_M500_BUDGET = 30.0
REGRET_M500_BUDGET = 20.0
CHURN_M500_BUDGET = 35.0

#: Dynamic-repair tier (PR-4): m=2000 poisson churn over a 6000-node
#: dense_urban pool.  Observed on a busy-VM core: ~0.2 s for the batched
#: replay of ~26 churn events through the incremental context (one
#: vectorized block update per event), ~0.5 s for the repair-mode TDMA
#: stability run (local repair per event; a single per-event *rebuild*
#: already costs ~0.14 s, so a regression to rescheduling-from-scratch
#: blows the budget).  The scenario build itself (~20 s, dominated by
#: the 6000-node substrate matrices) is paid once in a module fixture
#: and excluded from the timed sections.
CHURN_REPLAY_M2000_BUDGET = 20.0
REPAIR_STABILITY_M2000_BUDGET = 45.0

#: Capacity-repair tier (PR-5): the same m=2000 churn workload served by
#: the capacity-guaranteed scheduler (repeated-capacity anchors off
#: freeze-injected matrices, Algorithm-1 threshold probes per placement,
#: compaction every 16 events).  Observed on a busy-VM core: ~1.3 s
#: end-to-end for the TDMA stability run — the budget catches a
#: regression to per-event re-peeling (~0.3 s/event x ~20 events alone)
#: or to affectance rebuilds.  zeta is pinned to the substrate's
#: path-loss exponent: resolving the metricity of the 6000-node pool
#: space is a minutes-scale computation the online layer never needs.
CAPACITY_REPAIR_M2000_BUDGET = 45.0


def test_metricity_n300_under_budget():
    rng = np.random.default_rng(1)
    pts = rng.uniform(0, 20, size=(300, 2))
    space = DecaySpace.from_points(pts, 3.0)
    start = time.perf_counter()
    zeta = metricity(space)
    elapsed = time.perf_counter() - start
    assert zeta == 3.0 or abs(zeta - 3.0) < 5e-3
    assert elapsed < METRICITY_BUDGET, f"metricity n=300 took {elapsed:.2f}s"


def test_metricity_n2000_under_budget():
    """The scaled tier: a 2000-node geometric space through the tiered scan."""
    rng = np.random.default_rng(2)
    pts = rng.uniform(0, 40, size=(2000, 2))
    space = DecaySpace.from_points(pts, 3.0)
    start = time.perf_counter()
    zeta = metricity(space)
    elapsed = time.perf_counter() - start
    assert abs(zeta - 3.0) < 5e-3
    assert elapsed < METRICITY_N2000_BUDGET, (
        f"metricity n=2000 took {elapsed:.2f}s"
    )


def test_schedule_repeated_capacity_m150_under_budget():
    links = make_planar_links(150, alpha=3.0, seed=7, extent=40.0)
    start = time.perf_counter()
    schedule = schedule_repeated_capacity(links)
    elapsed = time.perf_counter() - start
    assert schedule.all_links() == tuple(range(150))
    assert elapsed < SCHEDULE_BUDGET, f"repeated capacity m=150 took {elapsed:.2f}s"


def test_schedule_repeated_capacity_m500_under_budget():
    """The scaled tier, end to end: zeta of the 1000-node dense_urban space
    plus 500 peel rounds through the incremental ledger (the scenario's
    high metricity degenerates Algorithm 1's separation, so every round
    schedules one link — the maximum round count at this size)."""
    links = build_scenario("dense_urban", n_links=500, seed=2)
    start = time.perf_counter()
    schedule = schedule_repeated_capacity(links)
    elapsed = time.perf_counter() - start
    assert schedule.all_links() == tuple(range(500))
    assert elapsed < SCHEDULE_M500_BUDGET, (
        f"repeated capacity m=500 took {elapsed:.2f}s"
    )


def test_first_fit_m150_stays_fast():
    links = make_planar_links(150, alpha=3.0, seed=7, extent=40.0)
    start = time.perf_counter()
    schedule = schedule_first_fit(links)
    elapsed = time.perf_counter() - start
    assert schedule.all_links() == tuple(range(150))
    assert elapsed < 1.0, f"first fit m=150 took {elapsed:.2f}s"


def test_first_fit_m500_stays_fast():
    """First-fit needs no metricity: m=500 must stay well under a second
    of kernel time even on the dense_urban space (budget covers matrix
    construction)."""
    links = build_scenario("dense_urban", n_links=500, seed=2)
    ctx = SchedulingContext(links)
    start = time.perf_counter()
    schedule = schedule_first_fit(links, context=ctx)
    elapsed = time.perf_counter() - start
    assert schedule.all_links() == tuple(range(500))
    assert elapsed < FIRST_FIT_M500_BUDGET, f"first fit m=500 took {elapsed:.2f}s"


def test_stability_m500_under_budget():
    """800 LQF slots at m=500 on a shared context (no loop rebuilds)."""
    links = build_scenario("dense_urban", n_links=500, seed=2)
    ctx = SchedulingContext(links)
    rate = 0.5 / schedule_first_fit(links, context=ctx).length
    start = time.perf_counter()
    result = run_queue_simulation(links, rate, 800, seed=3, context=ctx)
    elapsed = time.perf_counter() - start
    assert result.delivered > 0
    assert elapsed < STABILITY_M500_BUDGET, (
        f"stability m=500 took {elapsed:.2f}s"
    )


def test_regret_m500_under_budget():
    """800 MWU rounds at m=500 on a shared context."""
    links = build_scenario("dense_urban", n_links=500, seed=2)
    ctx = SchedulingContext(links)
    start = time.perf_counter()
    result = run_regret_capacity(links, rounds=800, seed=4, context=ctx)
    elapsed = time.perf_counter() - start
    assert result.best_size >= 1
    assert elapsed < REGRET_M500_BUDGET, f"regret m=500 took {elapsed:.2f}s"


def test_churn_m500_under_budget():
    """m=500 churn run: scenario build + O(m)-per-event incremental sim."""
    start = time.perf_counter()
    scenario = build_dynamic_scenario(
        "poisson_churn", n_links=500, seed=5, horizon=800
    )
    links = scenario.initial_links()
    result = run_queue_simulation(
        links, 0.1, 800, seed=6, churn=scenario
    )
    elapsed = time.perf_counter() - start
    assert result.churn_events > 0
    assert elapsed < CHURN_M500_BUDGET, f"churn m=500 took {elapsed:.2f}s"


@pytest.fixture(scope="module")
def churn_m2000():
    """The m=2000 churn workload shared by the dynamic-repair tier."""
    return build_dynamic_scenario(
        "poisson_churn", n_links=2000, seed=11, horizon=400,
        churn_rate=0.05, pool_factor=1.5,
    )


def test_batched_churn_replay_m2000_under_budget(churn_m2000):
    """Replaying the whole m=2000 trace (batched add_links per event)
    must stay within budget — one affectance build at adoption, then
    O(m) row/column block work per event."""
    links = churn_m2000.initial_links()
    ctx = SchedulingContext(links)
    start = time.perf_counter()
    dyn = ctx.dynamic()
    driver = ChurnDriver(dyn, churn_m2000)
    driver.step(churn_m2000.horizon)
    elapsed = time.perf_counter() - start
    assert driver.exhausted
    assert dyn.m == 2000  # poisson churn preserves the population
    assert elapsed < CHURN_REPLAY_M2000_BUDGET, (
        f"m=2000 batched churn replay took {elapsed:.2f}s"
    )


def test_repair_mode_stability_m2000_under_budget(churn_m2000):
    """The repair-mode TDMA run at m=2000: local repair per churn event,
    zero re-anchors, zero matrix rebuilds inside the loop."""
    links = churn_m2000.initial_links()
    start = time.perf_counter()
    result = run_queue_simulation(
        links, 0.05, churn_m2000.horizon, seed=12, churn=churn_m2000,
        scheduler="repair",
    )
    elapsed = time.perf_counter() - start
    assert result.churn_events == len(churn_m2000.events)
    assert result.scheduler_rebuilds == 0
    assert result.delivered > 0
    assert result.schedule_slots >= 1
    assert elapsed < REPAIR_STABILITY_M2000_BUDGET, (
        f"m=2000 repair-mode stability took {elapsed:.2f}s"
    )


def test_capacity_repair_stability_m2000_under_budget(churn_m2000):
    """The capacity-repair TDMA run at m=2000: peeled-slot anchors via
    freeze-injected matrix copies, threshold-guarded local repair per
    event, opportunistic compaction — zero re-anchors, zero rebuilds."""
    links = churn_m2000.initial_links()
    ctx = SchedulingContext(links, zeta=3.2)
    start = time.perf_counter()
    result = run_queue_simulation(
        links, 0.05, churn_m2000.horizon, seed=13, churn=churn_m2000,
        context=ctx, scheduler="capacity_repair", compaction_every=16,
    )
    elapsed = time.perf_counter() - start
    assert result.churn_events == len(churn_m2000.events)
    assert result.scheduler_rebuilds == 0
    assert result.delivered > 0
    assert result.schedule_slots >= 1
    assert elapsed < CAPACITY_REPAIR_M2000_BUDGET, (
        f"m=2000 capacity-repair stability took {elapsed:.2f}s"
    )


#: Sparse-backend scale tier (PR-8): m=10^4 planar_uniform through the
#: thresholded CSR backend at eps=0.2 (certified dropped tail <= 0.2 of
#: the feasibility budget; certified radius ~45 on the ~400-unit extent,
#: ~3.7M stored entries vs 10^8 dense).  Observed on a busy-VM core:
#: ~3 s CSR build, ~3 s first-fit, ~4 s scheduler adoption, ~8 s for 20
#: mixed churn-repair events — ~20 s end to end, with a ~0.4 GiB peak
#: (tracemalloc).  The acceptance criterion pins the peak under 1 GiB:
#: the dense matrix alone would need ~0.8 GiB at this size, so a
#: regression that materializes any O(m^2) array fails the memory
#: assert before it fails the clock.
SPARSE_M10K_BUDGET = 120.0
SPARSE_M10K_MEMORY_CAP = 1 << 30  # 1 GiB peak, tracemalloc-traced


def test_sparse_scale_m10k_first_fit_and_churn_repair():
    """m=10^4 first-fit + online churn repair, sparse backend, < 1 GiB."""
    import tracemalloc

    from repro.algorithms.repair import OnlineRepairScheduler

    tracemalloc.start()
    start = time.perf_counter()
    links = build_scenario("planar_uniform", n_links=10_000, seed=0)
    ctx = SchedulingContext(
        links, noise=0.0, beta=1.0, backend="sparse", eps=0.2
    )
    sparse = ctx.sparse_affectance
    assert sparse.nnz < 10_000 ** 2 // 10  # genuinely sparse pattern
    schedule = ctx.first_fit()
    assert sorted(v for slot in schedule for v in slot) == list(range(10_000))
    dyn = ctx.dynamic()
    scheduler = OnlineRepairScheduler(dyn)
    rng = np.random.default_rng(7)
    n_nodes = links.space.n
    for event in range(20):
        if event % 2 == 0:
            gone = [
                int(s)
                for s in rng.choice(dyn.active_slots, size=10, replace=False)
            ]
            dyn.remove_links(gone)
            scheduler.apply([], gone)
        else:
            pairs = []
            while len(pairs) < 5:
                a, b = rng.integers(0, n_nodes, size=2)
                if a != b:
                    pairs.append((int(a), int(b)))
            scheduler.apply(dyn.add_links(pairs), [])
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert scheduler.slot_count >= 1
    assert peak < SPARSE_M10K_MEMORY_CAP, (
        f"m=10^4 sparse run peaked at {peak / 2**30:.2f} GiB"
    )
    assert elapsed < SPARSE_M10K_BUDGET, (
        f"m=10^4 sparse first-fit + churn repair took {elapsed:.2f}s"
    )


#: Sharded-scheduling tier (PR-9): the m=10^4 churn workload of the
#: sparse tier routed through ~8 per-cell shard repairers.  Observed on
#: a busy-VM core: ~1 s CSR build, ~2 s shard slicing + per-shard
#: adoption, well under a second for the event replay (each event
#: repairs only its owning shards) and ~0.5 s for the final certified
#: merge.  The <60 s budget is the ISSUE-9 smoke criterion: a
#: regression that re-certifies the full merge per event (a per-member
#: gather loop over all 10^4 links) alone costs ~3 s x 16 events and
#: blows it.
SHARDED_M10K_BUDGET = 60.0


def test_sharded_scale_m10k_under_budget():
    """m=10^4 sharded churn repair end-to-end, < 60 s wall-clock."""
    from repro.algorithms.sharding import ShardedContext, ShardedRepairScheduler

    scn = build_dynamic_scenario(
        "poisson_churn", n_links=10_000, seed=3,
        substrate="planar_uniform", horizon=200, churn_rate=0.1,
    )
    links = scn.initial_links()
    start = time.perf_counter()
    ctx = SchedulingContext(
        links, noise=0.0, beta=1.0, backend="sparse", eps=0.2
    )
    sharded = ShardedContext(ctx, target_links_per_shard=10_000 // 8)
    assert sharded.n_shards >= 2
    sdyn = sharded.dynamic()
    driver = ChurnDriver(sdyn, scn)
    rep = ShardedRepairScheduler(sdyn, kind="first_fit")
    for ev in scn.events:
        rep.apply(*driver.step(ev.slot))
    schedule = rep.active_schedule
    elapsed = time.perf_counter() - start
    assert rep.check()
    placed = sum(len(s) for s in schedule)
    assert placed + len(rep.deferred) == sdyn.m
    assert elapsed < SHARDED_M10K_BUDGET, (
        f"m=10^4 sharded churn repair took {elapsed:.2f}s"
    )
