"""Performance smoke tests: the vectorized kernels must stay fast.

These guard the headline speedups of the metricity/scheduling refactor
(seed implementation: ~4 s each at these sizes).  Budgets are generous —
several times the observed times on a laptop-class core — so CI noise does
not flake them, while a regression to the pre-vectorized O(n^3)-per-pass
behaviour fails loudly.
"""

from __future__ import annotations

import time

import numpy as np

from repro.algorithms.scheduling import schedule_first_fit, schedule_repeated_capacity
from repro.core.decay import DecaySpace
from repro.core.metricity import metricity
from tests.conftest import make_planar_links

#: Wall-clock budgets (seconds).  Seed implementation: ~4 s each.
METRICITY_BUDGET = 2.0
SCHEDULE_BUDGET = 2.0


def test_metricity_n300_under_budget():
    rng = np.random.default_rng(1)
    pts = rng.uniform(0, 20, size=(300, 2))
    space = DecaySpace.from_points(pts, 3.0)
    start = time.perf_counter()
    zeta = metricity(space)
    elapsed = time.perf_counter() - start
    assert zeta == 3.0 or abs(zeta - 3.0) < 5e-3
    assert elapsed < METRICITY_BUDGET, f"metricity n=300 took {elapsed:.2f}s"


def test_schedule_repeated_capacity_m150_under_budget():
    links = make_planar_links(150, alpha=3.0, seed=7, extent=40.0)
    start = time.perf_counter()
    schedule = schedule_repeated_capacity(links)
    elapsed = time.perf_counter() - start
    assert schedule.all_links() == tuple(range(150))
    assert elapsed < SCHEDULE_BUDGET, f"repeated capacity m=150 took {elapsed:.2f}s"


def test_first_fit_m150_stays_fast():
    links = make_planar_links(150, alpha=3.0, seed=7, extent=40.0)
    start = time.perf_counter()
    schedule = schedule_first_fit(links)
    elapsed = time.perf_counter() - start
    assert schedule.all_links() == tuple(range(150))
    assert elapsed < 1.0, f"first fit m=150 took {elapsed:.2f}s"
