"""Scheduler daemon: lifecycle, live queries, checkpoint byte-identity.

The acceptance property of the service layer: a daemon is a *shell* —
every placement is made by the repair scheduler it wraps, so feeding a
churn trace through :meth:`SchedulerDaemon.submit` and killing the
daemon mid-trace (drain → checkpoint → discard → restore → resume)
must land on a final scheduler state **byte-identical** to the
uninterrupted run's.  Hypothesis drives the kill point; the comparison
covers every checkpointable array down to the float bit pattern.
"""

from __future__ import annotations

import asyncio
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics import ChurnEvent
from repro.errors import SimulationError
from repro.scenarios import build_dynamic_scenario
from repro.service.daemon import DaemonConfig, SchedulerDaemon, build_daemon
from tests.conftest import CHURN_EXAMPLES

pytestmark = pytest.mark.service


def _scn(seed=0, n_links=24, horizon=40, churn_rate=0.5):
    """A small planar churn scenario (vectorised substrate: fast)."""
    return build_dynamic_scenario(
        "poisson_churn",
        n_links=n_links,
        seed=seed,
        horizon=horizon,
        churn_rate=churn_rate,
        substrate="planar_uniform",
    )


def _state_bytes(daemon: SchedulerDaemon) -> dict[str, tuple]:
    """Every checkpointable array, down to the bit pattern."""
    state = dict(daemon.config.as_arrays())
    state.update(daemon._context_payload())
    state.update(daemon.driver.export_state())
    state.update(daemon.repairer.export_state())
    return {
        k: (v.dtype.str, v.shape, v.tobytes()) for k, v in state.items()
    }


def _drive(coro):
    return asyncio.run(coro)


async def _replay(daemon: SchedulerDaemon, events) -> list[dict]:
    """Enqueue the whole stream, drain, then collect every result.

    Awaiting each submission before the next would deadlock a batching
    daemon: a chunk's futures only resolve when the chunk flushes.
    """
    futures = [daemon._enqueue(ev) for ev in events]
    await daemon.drain()
    return [await f for f in futures]


class TestLifecycle:
    def test_start_ingest_query_drain_stop(self):
        scn = _scn()

        async def run():
            daemon = build_daemon(scn)
            assert not daemon.running
            await daemon.start()
            await daemon.start()  # idempotent
            assert daemon.running
            # Live admission: the result carries id, slot and placement.
            res = await daemon.admit(0, scn.space.n // 2)
            assert res["id"] == daemon.driver.next_id - 1
            assert daemon.place(res["id"]) == res["scheduled_slot"]
            assert res["scheduled_slot"] is not None
            # Concurrent admissions serialise through the worker queue.
            got = await asyncio.gather(
                *(daemon.admit(i, scn.space.n - 1 - i) for i in range(4))
            )
            assert len({r["id"] for r in got}) == 4
            assert all(r["latency_s"] >= 0.0 for r in got)
            # Departures by id; the slot disappears from reads.
            await daemon.depart(res["id"])
            assert daemon.place(res["id"]) is None
            # Trace events stream through the same path.
            await _replay(daemon, scn.events)
            await daemon.drain()
            stats = daemon.stats()
            assert stats["queue_depth"] == 0
            assert stats["processed"] == 6 + len(scn.events)
            assert stats["admissions"] > 0
            assert stats["admit_p99_s"] >= stats["admit_p50_s"] >= 0.0
            snap = daemon.snapshot()
            assert len(snap["ids"]) == stats["m"]
            assert sorted(snap["ids"]) == sorted(
                daemon.driver.ids_of(snap["slots"])
            )
            placed = [s for s in snap["scheduled"] if s is not None]
            assert placed and max(placed) < snap["slot_count"]
            await daemon.stop()
            assert not daemon.running

        _drive(run())

    def test_submit_refused_unless_running(self):
        scn = _scn()

        async def run():
            daemon = build_daemon(scn)
            with pytest.raises(SimulationError, match="not running"):
                await daemon.admit(0, 1)
            await daemon.start()
            await daemon.stop()
            with pytest.raises(SimulationError, match="not running"):
                await daemon.depart(0)

        _drive(run())

    def test_per_admit_power_rejected(self):
        scn = _scn()

        async def run():
            daemon = build_daemon(scn)
            await daemon.start()
            try:
                with pytest.raises(SimulationError, match="power"):
                    await daemon.admit(0, 1, power=2.0)
            finally:
                await daemon.stop()

        _drive(run())

    def test_unknown_departure_surfaces_but_daemon_keeps_serving(self):
        scn = _scn()

        async def run():
            daemon = build_daemon(scn)
            await daemon.start()
            try:
                with pytest.raises(SimulationError, match="departs unknown"):
                    await daemon.depart(10_000)
                # The worker survived the failed event.
                res = await daemon.admit(0, 1)
                assert res["slot"] is not None
            finally:
                await daemon.stop()

        _drive(run())


class TestConfig:
    def test_validation(self):
        with pytest.raises(SimulationError, match="batch must be >= 1"):
            DaemonConfig(batch=0)
        with pytest.raises(SimulationError, match="unknown repair kind"):
            DaemonConfig(kind="bogus")
        with pytest.raises(SimulationError, match="compaction_every"):
            DaemonConfig(kind="first_fit", compaction_every=4)
        with pytest.raises(SimulationError, match="shards must be >= 0"):
            DaemonConfig(shards=-1)

    def test_array_roundtrip(self):
        config = DaemonConfig(
            kind="capacity",
            shards=0,
            cascade=2,
            max_slots=9,
            admission="general",
            compaction_every=5,
            batch=16,
        )
        assert DaemonConfig.from_arrays(config.as_arrays()) == config

    def test_legacy_six_int_archives_default_to_batch_one(self):
        config = DaemonConfig(kind="first_fit", cascade=3)
        state = config.as_arrays()
        state["cfg_ints"] = state["cfg_ints"][:6]  # pre-batch layout
        assert DaemonConfig.from_arrays(state) == config


class TestCheckpointByteIdentity:
    @given(seed=st.integers(0, 2**10), cut_pct=st.integers(1, 99))
    @settings(max_examples=CHURN_EXAMPLES, deadline=None)
    def test_kill_mid_trace_resumes_byte_identical(self, seed, cut_pct):
        """The acceptance property: checkpoint at a hypothesis-chosen
        kill point, restore into a fresh daemon, finish the trace —
        every scheduler-state array matches the uninterrupted run bit
        for bit (per-event daemons flush at every event, so any kill
        point is a chunk boundary)."""
        scn = _scn(seed=seed)
        events = list(scn.events)
        k = max(1, (len(events) * cut_pct) // 100)

        async def uninterrupted():
            daemon = build_daemon(scn)
            await daemon.start()
            await _replay(daemon, events)
            await daemon.stop()
            return _state_bytes(daemon)

        async def killed():
            daemon = build_daemon(scn)
            await daemon.start()
            await _replay(daemon, events[:k])
            await daemon.drain()
            with tempfile.TemporaryDirectory() as tmp:
                daemon.checkpoint(f"{tmp}/ckpt")
                await daemon.stop()  # the "kill": this daemon is gone
                resumed = SchedulerDaemon.restore(f"{tmp}/ckpt", scn.space)
            await resumed.start()
            await _replay(resumed, events[k:])
            await resumed.stop()
            return resumed

        want = _drive(uninterrupted())
        resumed = _drive(killed())
        got = _state_bytes(resumed)
        assert got.keys() == want.keys()
        for key in want:
            assert got[key] == want[key], key

    def test_restore_rebuilds_config_and_serves(self):
        scn = _scn(seed=3)

        async def run():
            config = DaemonConfig(kind="capacity", batch=2)
            daemon = build_daemon(scn, config=config)
            await daemon.start()
            await _replay(daemon, scn.events[:6])
            await daemon.drain()
            with tempfile.TemporaryDirectory() as tmp:
                daemon.checkpoint(f"{tmp}/ckpt")
                await daemon.stop()
                resumed = SchedulerDaemon.restore(f"{tmp}/ckpt", scn.space)
            assert resumed.config == config
            await resumed.start()
            # One admission fills only half a batch=2 chunk; the drain
            # sentinel flushes it (awaiting it directly would deadlock).
            admit = asyncio.ensure_future(resumed.admit(0, 1))
            for _ in range(10):
                await asyncio.sleep(0)
            await resumed.drain()
            res = await admit
            assert res["id"] == resumed.driver.next_id - 1
            await resumed.stop()

        _drive(run())

    def test_checkpoint_refuses_open_chunk(self):
        scn = _scn(seed=4)

        async def run():
            daemon = build_daemon(scn, config=DaemonConfig(batch=8))
            await daemon.start()
            future = daemon.submit(scn.events[0])
            task = asyncio.ensure_future(future)
            # Let the worker collect the event into its open chunk.
            for _ in range(10):
                await asyncio.sleep(0)
            assert daemon._held == 1
            with pytest.raises(SimulationError, match="open batch chunk"):
                daemon.checkpoint("unused")
            # Drain flushes the partial chunk; checkpointing is legal now.
            await daemon.drain()
            await task
            with tempfile.TemporaryDirectory() as tmp:
                daemon.checkpoint(f"{tmp}/ckpt")
            await daemon.stop()

        _drive(run())


class TestBatching:
    def test_batched_replay_is_reproducible(self):
        """Chunk boundaries are a pure function of the event stream, so
        two batched replays land on identical state."""
        scn = _scn(seed=5)

        async def run():
            daemon = build_daemon(scn, config=DaemonConfig(batch=4))
            await daemon.start()
            await _replay(daemon, scn.events)
            await daemon.stop()
            return _state_bytes(daemon)

        assert _drive(run()) == _drive(run())

    def test_batched_checkpoint_at_drain_resumes_identically(self):
        """Under batching a drain is a chunk boundary; a checkpoint
        taken there resumes byte-identically to the run that drained at
        the same point without the checkpoint/restore detour."""
        scn = _scn(seed=6)
        events = list(scn.events)
        k = len(events) // 2

        async def reference():
            daemon = build_daemon(scn, config=DaemonConfig(batch=3))
            await daemon.start()
            await _replay(daemon, events[:k])
            await daemon.drain()  # same boundary as the checkpoint run
            await _replay(daemon, events[k:])
            await daemon.stop()
            return _state_bytes(daemon)

        async def detour():
            daemon = build_daemon(scn, config=DaemonConfig(batch=3))
            await daemon.start()
            await _replay(daemon, events[:k])
            await daemon.drain()
            with tempfile.TemporaryDirectory() as tmp:
                daemon.checkpoint(f"{tmp}/ckpt")
                await daemon.stop()
                resumed = SchedulerDaemon.restore(f"{tmp}/ckpt", scn.space)
            await resumed.start()
            await _replay(resumed, events[k:])
            await resumed.stop()
            return _state_bytes(resumed)

        assert _drive(reference()) == _drive(detour())

    def test_in_chunk_departure_closes_the_chunk(self):
        """A departure of an id that arrived inside the open chunk
        flushes first — the merged event would otherwise depart a link
        its own departures-first ordering has not admitted yet."""
        scn = _scn(seed=7)

        async def run():
            daemon = build_daemon(scn, config=DaemonConfig(batch=16))
            await daemon.start()
            first = daemon.driver.next_id
            admit = asyncio.ensure_future(daemon.admit(0, 1))
            for _ in range(10):
                await asyncio.sleep(0)
            # The arrival is held in the open chunk, unresolved.
            assert not admit.done()
            assert daemon._held == 1
            # A departure referencing the held id forces the flush...
            depart = asyncio.ensure_future(daemon.depart(first))
            for _ in range(10):
                await asyncio.sleep(0)
            res = await admit
            assert res["id"] == first
            # ...and itself starts a fresh open chunk behind it.
            assert daemon._held == 1
            await daemon.drain()
            await depart
            assert daemon.place(first) is None
            await daemon.stop()

        _drive(run())


class TestShardedDaemon:
    def test_sharded_lifecycle_and_checkpoint_roundtrip(self):
        scn = _scn(seed=8, n_links=48, horizon=20)

        async def run():
            config = DaemonConfig(shards=2)
            daemon = build_daemon(scn, config=config, backend="sparse")
            await daemon.start()
            await _replay(daemon, scn.events)
            await daemon.drain()
            want = _state_bytes(daemon)
            with tempfile.TemporaryDirectory() as tmp:
                daemon.checkpoint(f"{tmp}/ckpt")
                # The shard layout rides as a sidecar next to the archive.
                assert daemon.layout_path(f"{tmp}/ckpt").is_file()
                await daemon.stop()
                resumed = SchedulerDaemon.restore(f"{tmp}/ckpt", scn.space)
            assert _state_bytes(resumed) == want
            await resumed.start()
            res = await resumed.admit(0, 1)
            assert res["slot"] is not None
            await resumed.stop()

        _drive(run())

    def test_sharded_daemon_needs_sparse_backend(self):
        scn = _scn(seed=9)
        with pytest.raises(SimulationError, match="sparse"):
            build_daemon(scn, config=DaemonConfig(shards=2), backend="dense")
