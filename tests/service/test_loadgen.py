"""Load generator: trace replay reports, the CLI, and its gate flags."""

from __future__ import annotations

import json

import pytest

from repro.service.loadgen import main, run_loadgen

pytestmark = pytest.mark.service

#: Small, fast replay shared by every test (vectorised substrate).
_ARGS = dict(
    n_links=40,
    seed=1,
    horizon=30,
    scenario_kwargs={"churn_rate": 0.5, "substrate": "planar_uniform"},
)


class TestRunLoadgen:
    def test_report_shape(self):
        report = run_loadgen(**_ARGS)
        assert report["events"] > 0
        assert report["events_per_s"] > 0
        assert report["elapsed_s"] > 0
        assert report["admissions"] > 0
        assert report["admit_p99_ms"] >= report["admit_p50_ms"] >= 0.0
        assert report["m"] > 0 and report["slot_count"] >= 1
        # Build knobs echo into the report for the BENCH artifact.
        for key in ("backend", "shards", "kind", "batch", "eps", "radius"):
            assert key in report

    def test_rate_cap_slows_the_replay(self):
        capped = run_loadgen(rate=200.0, **_ARGS)
        events = capped["events"]
        assert capped["rate_cap"] == 200.0
        # Submission pacing bounds sustained throughput by the cap
        # (generously slack: the last event still has to apply).
        assert capped["elapsed_s"] >= (events - 1) / 200.0

    def test_batched_replay_counts_every_event(self):
        a = run_loadgen(batch=1, **_ARGS)
        b = run_loadgen(batch=4, **_ARGS)
        assert a["events"] == b["events"]
        assert b["batch"] == 4
        # Same trace either way: the daemon ends at the same population.
        assert a["m"] == b["m"]


class TestCli:
    _ARGV = [
        "--n-links", "40", "--seed", "1", "--horizon", "30",
        "--churn-rate", "0.5", "--scenario", "poisson_churn",
    ]

    def test_writes_bench_document(self, tmp_path, capsys):
        out = tmp_path / "BENCH_service.json"
        rc = main(self._ARGV + ["--out", str(out), "--label", "smoke"])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert "smoke" in doc
        assert doc["smoke"]["events"] > 0
        # Stdout mirrors the labelled report for CI logs.
        assert "smoke" in capsys.readouterr().out
        # A second labelled run merges instead of clobbering.
        rc = main(self._ARGV + ["--out", str(out), "--label", "again"])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert set(doc) == {"smoke", "again"}

    def test_default_label_encodes_run_shape(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = main(self._ARGV + ["--out", str(out), "--batch", "4"])
        assert rc == 0
        (label,) = json.loads(out.read_text())
        assert label == "poisson_churn_m40_h30_first_fit_b4"

    def test_gate_flags_fail_loudly(self, capsys):
        assert main(self._ARGV + ["--min-events", "10000"]) == 1
        assert "FAIL" in capsys.readouterr().out
        assert main(self._ARGV + ["--min-events-per-s", "1e9"]) == 1
        assert "FAIL" in capsys.readouterr().out
        assert main(self._ARGV + ["--budget-s", "0.0"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_gate_flags_pass_when_met(self):
        assert main(self._ARGV + ["--min-events", "1"]) == 0
