"""Tests for repro.spaces.constructions (the paper's named examples)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metricity import metricity, varphi
from repro.spaces.constructions import (
    line_space,
    star_space,
    three_point_space,
    uniform_space,
    welzl_space,
)
from repro.spaces.independence import independence_dimension, is_independent_wrt
from repro.spaces.quasimetric import is_triangle_satisfied


class TestStarSpace:
    def test_shape_and_distances(self):
        space = star_space(k=4, r=0.5)
        assert space.n == 6
        assert space.decay(0, 1) == 16.0  # center to far leaf: k^2
        assert space.decay(0, 5) == 0.5  # center to near leaf: r
        assert space.decay(1, 2) == 32.0  # leaf to leaf through center
        assert space.decay(1, 5) == 16.5

    def test_is_metric(self):
        space = star_space(k=5, r=1.0)
        assert space.is_symmetric()
        assert is_triangle_satisfied(space.f)
        assert metricity(space) <= 1.0 + 1e-6

    def test_validation(self):
        with pytest.raises(ValueError, match="leaf"):
            star_space(0, 1.0)
        with pytest.raises(ValueError, match="positive"):
            star_space(3, 0.0)

    def test_labels(self):
        space = star_space(k=2, r=1.0)
        assert space.labels == ("x0", "x1", "x2", "x-1")


class TestWelzlSpace:
    def test_is_metric(self):
        space = welzl_space(5)
        assert space.is_symmetric()
        assert is_triangle_satisfied(space.f)

    def test_distances(self):
        space = welzl_space(4, eps=0.25)
        # d(v_-1, v_i) = 2^i - eps; d(v_j, v_i) = 2^max(i,j).
        assert space.decay(0, 1) == pytest.approx(2.0**0 - 0.25)
        assert space.decay(0, 5) == pytest.approx(2.0**4 - 0.25)
        assert space.decay(2, 4) == pytest.approx(2.0**3)

    def test_unbounded_independence(self):
        # V \ {v_-1} is independent w.r.t. v_-1 (Sec. 4.1).
        for n in (2, 4, 6):
            space = welzl_space(n)
            assert is_independent_wrt(space, list(range(1, n + 2)), 0)
            assert independence_dimension(space) == n + 1

    def test_validation(self):
        with pytest.raises(ValueError, match="n >= 1"):
            welzl_space(0)
        with pytest.raises(ValueError, match="eps"):
            welzl_space(3, eps=0.5)


class TestThreePointSpace:
    def test_values(self):
        space = three_point_space(10.0)
        assert space.decay(0, 1) == 1.0
        assert space.decay(1, 2) == 10.0
        assert space.decay(0, 2) == 20.0

    def test_varphi_bounded_zeta_unbounded(self):
        v_values, z_values = [], []
        for q in (1e2, 1e6):
            space = three_point_space(q)
            v_values.append(varphi(space))
            z_values.append(metricity(space))
        assert all(v < 2.0 for v in v_values)
        assert z_values[1] > z_values[0] > 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="q > 1"):
            three_point_space(1.0)


class TestUniformAndLine:
    def test_uniform_space(self):
        space = uniform_space(5, c=2.0)
        off = space.off_diagonal()
        assert np.all(off == 2.0)
        assert independence_dimension(space) == 1

    def test_uniform_validation(self):
        with pytest.raises(ValueError, match="n >= 1"):
            uniform_space(0)
        with pytest.raises(ValueError, match="positive"):
            uniform_space(3, c=-1.0)

    def test_line_space(self):
        space = line_space(4, spacing=2.0, alpha=2.0)
        assert space.decay(0, 3) == pytest.approx(36.0)
        assert metricity(space) == pytest.approx(2.0, abs=1e-3)

    def test_line_validation(self):
        with pytest.raises(ValueError, match="n >= 1"):
            line_space(0)
