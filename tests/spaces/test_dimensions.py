"""Tests for repro.spaces.dimensions (packings, Assouad, doubling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decay import DecaySpace
from repro.spaces.constructions import line_space, uniform_space, welzl_space
from repro.spaces.dimensions import (
    assouad_dimension,
    densest_packing,
    doubling_constant,
    doubling_dimension,
    fit_assouad,
    is_fading_space,
    is_packing,
    packing_number,
)


class TestPackings:
    def test_is_packing_definition(self):
        space = line_space(6, spacing=1.0, alpha=1.0)
        # t-packing requires pairwise decay > 2t.
        assert is_packing(space, [0, 3], t=1.4)  # decay 3 > 2.8
        assert not is_packing(space, [0, 3], t=1.5)  # 3 > 3 fails
        assert is_packing(space, [2], t=100.0)

    def test_packing_number_line(self):
        space = line_space(9, spacing=1.0, alpha=1.0)
        body = list(range(9))
        # decay > 2 means gap >= 3: points {0,3,6} -> 3.
        assert packing_number(space, body, t=1.0) == 3
        # decay > 4 means gap >= 5: points {0,5} -> 2... and 8? gap 0-5-8 is 3.
        assert packing_number(space, body, t=2.0) == 2

    def test_packing_number_greedy_lower_bound(self):
        space = line_space(12, spacing=1.0, alpha=1.0)
        body = list(range(12))
        exact = packing_number(space, body, t=1.0, exact=True)
        greedy = packing_number(space, body, t=1.0, exact=False)
        assert greedy <= exact

    def test_empty_body(self):
        space = line_space(4)
        assert packing_number(space, [], t=1.0) == 0

    def test_asymmetric_uses_min_direction(self):
        f = np.array(
            [
                [0.0, 10.0, 10.0],
                [1.0, 0.0, 10.0],
                [10.0, 10.0, 0.0],
            ]
        )
        space = DecaySpace(f)
        # Pair (0, 1): min(f(0,1), f(1,0)) = 1 <= 2t for t=1.
        assert not is_packing(space, [0, 1], t=1.0)
        assert is_packing(space, [0, 2], t=1.0)


class TestDensestPacking:
    def test_rejects_bad_q(self):
        with pytest.raises(ValueError, match="exceed 1"):
            densest_packing(line_space(5), q=1.0)

    def test_line_grows_with_q(self):
        space = line_space(16, spacing=1.0, alpha=1.0)
        g2 = densest_packing(space, 2.0)
        g8 = densest_packing(space, 8.0)
        assert g2 <= g8

    def test_uniform_space_is_degenerate(self):
        # All decays equal: any ball either is a single point or everything;
        # packings at scale r/q have decay 1 > 2/q only for q > 2.
        space = uniform_space(6)
        assert densest_packing(space, 4.0) == 6


class TestAssouad:
    def test_line_alpha2_is_fading(self):
        # Decay |i-j|^2: packings in decay balls grow like sqrt(q).
        space = line_space(14, spacing=1.0, alpha=2.0)
        a, c = fit_assouad(space)
        assert a < 1.0
        assert c >= 1.0
        assert is_fading_space(space, constant=c, qs=[4.0, 16.0])

    def test_line_alpha1_not_fading(self):
        # Decay = distance: packings grow linearly with q -> A ~ 1.
        space = line_space(14, spacing=1.0, alpha=1.0)
        a, _ = fit_assouad(space)
        assert a > 0.6

    def test_fit_bound_holds_on_samples(self):
        space = line_space(12, spacing=1.0, alpha=2.0)
        a, c = fit_assouad(space, qs=[2.0, 4.0, 8.0])
        for q in (2.0, 4.0, 8.0):
            assert densest_packing(space, q) <= c * q**a + 1e-9

    def test_assouad_dimension_monotone_in_constant(self):
        space = line_space(10, spacing=1.0, alpha=2.0)
        a1 = assouad_dimension(space, constant=1.0)
        a2 = assouad_dimension(space, constant=2.0)
        assert a2 <= a1

    def test_rejects_bad_constant(self):
        with pytest.raises(ValueError, match="positive"):
            assouad_dimension(line_space(5), constant=0.0)


class TestDoubling:
    def test_line_metric_doubles_with_two_balls(self):
        space = line_space(16, spacing=1.0, alpha=1.0)
        const = doubling_constant(space.f)
        # An interval of radius 2r is covered by ~2-3 balls of radius r
        # (greedy covering may use one extra).
        assert const <= 4
        assert doubling_dimension(space.f) <= 2.0

    def test_uniform_space_trivially_doubling(self):
        # Every ball is a point or everything; one ball suffices... but at
        # radius just above c/2 the 2r-ball is everything while r-balls are
        # singletons -> constant n.
        space = uniform_space(6)
        assert doubling_constant(space.f) == 6

    def test_welzl_space_doubling_small(self):
        space = welzl_space(6)
        # Welzl's construction: doubling dimension ~1 (constant <= ~4 with
        # greedy covering slack).
        assert doubling_constant(space.f) <= 4
