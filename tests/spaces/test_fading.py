"""Tests for repro.spaces.fading (Def. 3.1 and Theorem 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decay import DecaySpace
from repro.spaces.constructions import line_space, star_space
from repro.spaces.dimensions import fit_assouad
from repro.spaces.fading import (
    fading_parameter,
    fading_value,
    is_r_separated,
    max_interference_set,
    theorem2_bound,
)


class TestSeparation:
    def test_r_separated_definition(self):
        space = line_space(6, spacing=1.0, alpha=1.0)
        assert is_r_separated(space, [0, 3], r=3.0)
        assert not is_r_separated(space, [0, 2], r=3.0)
        assert is_r_separated(space, [4], r=100.0)

    def test_asymmetric_min_direction(self):
        f = np.array(
            [
                [0.0, 5.0, 5.0],
                [1.0, 0.0, 5.0],
                [5.0, 5.0, 0.0],
            ]
        )
        space = DecaySpace(f)
        assert not is_r_separated(space, [0, 1], r=2.0)


class TestFadingValue:
    def test_hand_computed_on_line(self):
        # Points 0..5 at unit spacing, decay = distance (alpha = 1).
        space = line_space(6, spacing=1.0, alpha=1.0)
        # r = 2: senders pairwise decay >= 2 and decay >= 2 from listener 0.
        # Best set: {2, 4} (and not 3 or 5 simultaneously closer);
        # candidates x with f(x,0) >= 2: {2,3,4,5}; pairwise >= 2 means gap 2.
        # Max weight: {2, 4} -> 1/2 + 1/4 = 0.75 vs {2, 5} -> 0.7, {3, 5} .53.
        senders, total = max_interference_set(space, 0, r=2.0)
        assert senders == [2, 4]
        assert total == pytest.approx(0.75)
        assert fading_value(space, 0, r=2.0) == pytest.approx(1.5)

    def test_listener_separation_enforced(self):
        # Without excluding near-listener interferers the value explodes;
        # Theorem 2's usage requires f(x, z) >= r.
        space = line_space(6, spacing=1.0, alpha=1.0)
        senders, _ = max_interference_set(space, 0, r=2.0)
        assert all(space.f[x, 0] >= 2.0 for x in senders)

    def test_fading_parameter_is_max(self):
        space = line_space(6, spacing=1.0, alpha=1.0)
        gamma = fading_parameter(space, r=2.0)
        assert gamma == pytest.approx(
            max(fading_value(space, z, 2.0) for z in range(6))
        )

    def test_greedy_lower_bound(self):
        space = line_space(10, spacing=1.0, alpha=2.0)
        exact = fading_value(space, 0, r=4.0, exact=True)
        greedy = fading_value(space, 0, r=4.0, exact=False)
        assert greedy <= exact + 1e-12

    def test_rejects_bad_r(self):
        space = line_space(4)
        with pytest.raises(ValueError, match="positive"):
            fading_value(space, 0, r=0.0)

    def test_singleton_space(self):
        space = DecaySpace(np.zeros((1, 1)))
        assert fading_value(space, 0, r=1.0) == 0.0


class TestTheorem2:
    def test_bound_formula(self):
        # A = 0: C * 2 * (zetahat(2) - 1) = 2 (pi^2/6 - 1).
        expected = 2.0 * (np.pi**2 / 6.0 - 1.0)
        assert theorem2_bound(0.0, 1.0) == pytest.approx(expected)

    def test_bound_scales_with_constant(self):
        assert theorem2_bound(0.5, 3.0) == pytest.approx(
            3.0 * theorem2_bound(0.5, 1.0)
        )

    def test_rejects_non_fading(self):
        with pytest.raises(ValueError, match="dimension"):
            theorem2_bound(1.0)

    def test_rejects_bad_constant(self):
        with pytest.raises(ValueError, match="positive"):
            theorem2_bound(0.5, 0.0)

    @pytest.mark.parametrize(
        "space,r",
        [
            (line_space(12, spacing=1.0, alpha=2.0), 4.0),
            (line_space(12, spacing=1.0, alpha=3.0), 8.0),
        ],
    )
    def test_gamma_within_bound_on_fading_spaces(self, space, r):
        """Theorem 2 end to end: measured gamma below the fitted bound."""
        a, c = fit_assouad(space)
        assert a < 1.0
        gamma = fading_parameter(space, r)
        assert gamma <= theorem2_bound(a, c) + 1e-9

    def test_star_space_interference_shrinks(self):
        # Sec. 3.4: interference at x_{-1} from k far leaves ~ 1/k.
        values = []
        for k in (4, 16):
            space = star_space(k, r=1.0)
            leaves = np.arange(1, k + 1)
            near = k + 1
            values.append(float((1.0 / space.f[leaves, near]).sum()))
        assert values[1] < values[0]
        assert values[1] == pytest.approx(1.0 / 16.0, rel=0.1)
