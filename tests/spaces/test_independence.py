"""Tests for repro.spaces.independence (Def. 4.1, guards, Welzl)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decay import DecaySpace
from repro.geometry.points import uniform_points
from repro.spaces.constructions import uniform_space, welzl_space
from repro.spaces.independence import (
    greedy_guards,
    independence_dimension,
    is_guard_set,
    is_independent_wrt,
    max_independent_wrt,
    minimum_guards,
    planar_sector_guards,
)


class TestIndependentSets:
    def test_definition_hand_case(self):
        # Two points both closer to x (node 0) than to each other.
        f = np.array(
            [
                [0.0, 1.0, 1.0],
                [1.0, 0.0, 5.0],
                [1.0, 5.0, 0.0],
            ]
        )
        space = DecaySpace(f)
        assert is_independent_wrt(space, [1, 2], 0)

    def test_definition_violated(self):
        # Node 1 closer to node 2 than to the center.
        f = np.array(
            [
                [0.0, 3.0, 3.0],
                [3.0, 0.0, 1.0],
                [3.0, 1.0, 0.0],
            ]
        )
        space = DecaySpace(f)
        assert not is_independent_wrt(space, [1, 2], 0)

    def test_center_cannot_be_member(self):
        space = uniform_space(4)
        assert not is_independent_wrt(space, [0, 1], 0)

    def test_singletons_independent(self):
        space = uniform_space(4)
        assert is_independent_wrt(space, [1], 0)

    def test_strictness(self):
        # Equal decays: NOT independent (strict inequality required).
        space = uniform_space(3)
        assert not is_independent_wrt(space, [1, 2], 0)


class TestIndependenceDimension:
    def test_uniform_space_dimension_one(self):
        assert independence_dimension(uniform_space(6)) == 1

    def test_welzl_space_unbounded(self):
        # All of V \ {v_-1} is independent w.r.t. v_-1: dimension n + 1.
        for n in (3, 5):
            space = welzl_space(n)
            assert independence_dimension(space) >= n + 1
            members = list(range(1, n + 2))
            assert is_independent_wrt(space, members, 0)

    def test_plane_at_most_five(self):
        # Euclidean plane: pairwise angles > 60 deg, at most 5 points.
        for seed in (0, 1, 2):
            pts = uniform_points(12, extent=10.0, seed=seed)
            space = DecaySpace.from_points(pts, 2.0)
            assert independence_dimension(space) <= 5

    def test_max_independent_is_valid(self, planar_space):
        best = max_independent_wrt(planar_space, 0)
        assert is_independent_wrt(planar_space, best, 0)

    def test_greedy_at_most_exact(self, planar_space):
        for x in range(4):
            exact = max_independent_wrt(planar_space, x, exact=True)
            greedy = max_independent_wrt(planar_space, x, exact=False)
            assert len(greedy) <= len(exact)
            assert is_independent_wrt(planar_space, greedy, x)


class TestGuards:
    def test_guard_verification_hand_case(self):
        # Node 1 guards node 0 from everything: f(z, 1) <= f(z, 0) for all z.
        f = np.array(
            [
                [0.0, 1.0, 4.0],
                [1.0, 0.0, 2.0],
                [4.0, 2.0, 0.0],
            ]
        )
        space = DecaySpace(f)
        assert is_guard_set(space, 0, [1])
        # [2] fails to guard 0: f(1, 2) = 2 > f(1, 0) = 1.
        assert not is_guard_set(space, 0, [2])

    def test_every_point_guardable(self, planar_space):
        for x in range(planar_space.n):
            guards = greedy_guards(planar_space, x)
            assert is_guard_set(planar_space, x, guards)

    def test_minimum_guards_not_larger_than_greedy(self, planar_space):
        x = 0
        mini = minimum_guards(planar_space, x, max_size=4)
        greedy = greedy_guards(planar_space, x)
        assert is_guard_set(planar_space, x, mini)
        assert len(mini) <= max(len(greedy), 4)

    def test_plane_guard_count_small(self):
        # Welzl: the plane needs few guards (independence dim <= 5).
        pts = uniform_points(10, extent=10.0, seed=5)
        space = DecaySpace.from_points(pts, 3.0)
        for x in range(space.n):
            assert len(greedy_guards(space, x)) <= 6

    def test_sector_guards_guard_in_euclidean(self):
        pts = uniform_points(12, extent=10.0, seed=9)
        space = DecaySpace.from_points(pts, 2.0)
        for x in range(4):
            guards = planar_sector_guards(pts, x)
            assert len(guards) <= 6
            assert is_guard_set(space, x, guards)

    def test_sector_guards_validation(self):
        with pytest.raises(ValueError, match="coordinates"):
            planar_sector_guards(np.zeros((4, 3)), 0)
