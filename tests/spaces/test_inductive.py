"""Tests for inductive independence."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.algorithms.conflict_graph import affectance_conflict_graph
from repro.spaces.inductive import (
    inductive_color_bound,
    inductive_independence,
    is_inductive_independent,
)
from tests.conftest import make_planar_links


class TestInductiveIndependence:
    def test_empty_graph_zero(self):
        g = nx.empty_graph(5)
        assert inductive_independence(g, order=list(range(5))) == 0

    def test_clique_is_one_inductive(self):
        # Every later neighborhood of a clique is itself a clique.
        g = nx.complete_graph(6)
        assert inductive_independence(g, order=list(range(6))) == 1

    def test_star_depends_on_order(self):
        g = nx.star_graph(5)  # center 0, leaves 1..5
        # Center first: its later neighborhood is all 5 leaves (independent).
        assert inductive_independence(g, order=[0, 1, 2, 3, 4, 5]) == 5
        # Center last: every leaf's later neighborhood is just the center.
        assert inductive_independence(g, order=[1, 2, 3, 4, 5, 0]) == 1

    def test_predicate(self):
        g = nx.cycle_graph(6)
        order = list(range(6))
        rho = inductive_independence(g, order=order)
        assert is_inductive_independent(g, rho, order=order)
        assert not is_inductive_independent(g, rho - 1, order=order)

    def test_greedy_lower_bound(self):
        g = nx.erdos_renyi_graph(14, 0.4, seed=3)
        order = list(range(14))
        exact = inductive_independence(g, order=order, exact=True)
        greedy = inductive_independence(g, order=order, exact=False)
        assert greedy <= exact

    def test_requires_order_or_links(self):
        g = nx.path_graph(4)
        with pytest.raises(ValueError, match="order"):
            inductive_independence(g)

    def test_order_must_cover_nodes(self):
        g = nx.path_graph(4)
        with pytest.raises(ValueError, match="enumerate"):
            inductive_independence(g, order=[0, 1])

    def test_length_order_on_affectance_graph(self):
        """The paper's setting: small rho for planar link conflict graphs."""
        links = make_planar_links(12, alpha=3.0, seed=4)
        g = affectance_conflict_graph(links, threshold=0.5)
        rho = inductive_independence(g, links=links)
        assert 0 <= rho <= 12
        assert is_inductive_independent(g, rho, links=links)


class TestColorBound:
    def test_coloring_is_proper(self):
        links = make_planar_links(12, alpha=3.0, seed=5)
        g = affectance_conflict_graph(links, threshold=0.5)
        count = inductive_color_bound(g, links=links)
        assert count >= 1
        # A proper colouring uses at least clique-number colours.
        clique, _ = nx.max_weight_clique(g, weight=None)
        assert count >= len(clique)

    def test_edgeless_one_color(self):
        g = nx.empty_graph(5)
        assert inductive_color_bound(g, order=list(range(5))) == 1

    def test_complete_needs_n(self):
        g = nx.complete_graph(5)
        assert inductive_color_bound(g, order=list(range(5))) == 5
