"""Tests for the exact max-weight clique engine."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ExactComputationError
from repro.spaces._mwc import greedy_weight_clique, max_weight_clique


def brute_force(adj: np.ndarray, weights: np.ndarray) -> float:
    n = adj.shape[0]
    best = 0.0
    for k in range(1, n + 1):
        for combo in itertools.combinations(range(n), k):
            if all(adj[u, v] for u, v in itertools.combinations(combo, 2)):
                best = max(best, float(weights[list(combo)].sum()))
    return best


def random_graph(n: int, p: float, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    adj = rng.random((n, n)) < p
    adj = np.triu(adj, 1)
    adj = adj | adj.T
    weights = rng.uniform(0.1, 3.0, size=n)
    return adj, weights


class TestExactness:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        adj, weights = random_graph(8, 0.5, seed)
        _, value = max_weight_clique(adj, weights)
        assert value == pytest.approx(brute_force(adj, weights))

    def test_returned_set_is_clique(self):
        adj, weights = random_graph(10, 0.4, 3)
        nodes, value = max_weight_clique(adj, weights)
        for u, v in itertools.combinations(nodes, 2):
            assert adj[u, v]
        assert value == pytest.approx(float(weights[nodes].sum()))

    def test_empty_graph(self):
        nodes, value = max_weight_clique(np.zeros((0, 0), dtype=bool), np.zeros(0))
        assert nodes == [] and value == 0.0

    def test_edgeless_graph_takes_heaviest(self):
        adj = np.zeros((4, 4), dtype=bool)
        w = np.array([1.0, 5.0, 2.0, 3.0])
        nodes, value = max_weight_clique(adj, w)
        assert nodes == [1] and value == 5.0

    def test_complete_graph_takes_all(self):
        adj = ~np.eye(5, dtype=bool)
        nodes, value = max_weight_clique(adj, np.ones(5))
        assert nodes == [0, 1, 2, 3, 4] and value == 5.0

    def test_unit_weights_default(self):
        adj = ~np.eye(3, dtype=bool)
        nodes, value = max_weight_clique(adj)
        assert value == 3.0


class TestValidationAndLimits:
    def test_limit(self):
        adj = np.zeros((5, 5), dtype=bool)
        with pytest.raises(ExactComputationError, match="limited"):
            max_weight_clique(adj, np.ones(5), limit=4)

    def test_rejects_asymmetric(self):
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = True
        with pytest.raises(ValueError, match="symmetric"):
            max_weight_clique(adj, np.ones(3))

    def test_rejects_self_loops(self):
        adj = np.eye(3, dtype=bool)
        with pytest.raises(ValueError, match="diagonal"):
            max_weight_clique(adj, np.ones(3))

    def test_rejects_negative_weights(self):
        adj = np.zeros((3, 3), dtype=bool)
        with pytest.raises(ValueError, match="non-negative"):
            max_weight_clique(adj, np.array([1.0, -1.0, 1.0]))

    def test_rejects_misaligned_weights(self):
        adj = np.zeros((3, 3), dtype=bool)
        with pytest.raises(ValueError, match="align"):
            max_weight_clique(adj, np.ones(4))


class TestGreedy:
    def test_greedy_is_clique_and_lower_bound(self):
        for seed in range(6):
            adj, weights = random_graph(12, 0.5, seed)
            nodes, value = greedy_weight_clique(adj, weights)
            for u, v in itertools.combinations(nodes, 2):
                assert adj[u, v]
            _, opt = max_weight_clique(adj, weights)
            assert value <= opt + 1e-12

    def test_greedy_empty(self):
        nodes, value = greedy_weight_clique(
            np.zeros((0, 0), dtype=bool), np.zeros(0)
        )
        assert nodes == [] and value == 0.0


@given(st.integers(min_value=1, max_value=7), st.integers(min_value=0, max_value=50))
def test_property_exact_vs_brute(n, seed):
    adj, weights = random_graph(n, 0.45, seed)
    _, value = max_weight_clique(adj, weights)
    assert value == pytest.approx(brute_force(adj, weights))
