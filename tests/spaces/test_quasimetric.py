"""Tests for repro.spaces.quasimetric (Sec. 2.2 induced quasi-metrics)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.decay import DecaySpace
from repro.errors import DecaySpaceError
from repro.spaces.quasimetric import (
    QuasiMetric,
    is_triangle_satisfied,
    triangle_violations,
)
from tests.conftest import random_decay_matrix


def metric_matrix() -> np.ndarray:
    return np.array(
        [
            [0.0, 1.0, 2.0],
            [1.0, 0.0, 1.5],
            [2.0, 1.5, 0.0],
        ]
    )


class TestTriangle:
    def test_metric_satisfies(self):
        assert is_triangle_satisfied(metric_matrix())
        assert triangle_violations(metric_matrix()) == []

    def test_violation_detected(self):
        d = metric_matrix()
        d[0, 2] = d[2, 0] = 10.0
        assert not is_triangle_satisfied(d)
        bad = triangle_violations(d)
        assert (0, 2, 1) in bad

    def test_directed_violation(self):
        # Asymmetric: only the ordered triple (0 -> 2) violates.
        d = metric_matrix()
        d[0, 2] = 10.0  # but d[2, 0] stays 2.0
        bad = triangle_violations(d)
        assert all(x == 0 and y == 2 for x, y, _ in bad)


class TestQuasiMetric:
    def test_valid_construction(self):
        qm = QuasiMetric(metric_matrix())
        assert qm.n == 3
        assert qm.distance(0, 1) == 1.0
        assert qm.is_symmetric()

    def test_rejects_triangle_violation(self):
        d = metric_matrix()
        d[0, 2] = d[2, 0] = 10.0
        with pytest.raises(DecaySpaceError, match="triangle"):
            QuasiMetric(d)

    def test_rejects_bad_diagonal(self):
        d = metric_matrix()
        d[1, 1] = 1.0
        with pytest.raises(DecaySpaceError, match="diagonal"):
            QuasiMetric(d)

    def test_rejects_nonpositive(self):
        d = metric_matrix()
        d[0, 1] = 0.0
        with pytest.raises(DecaySpaceError, match="positive"):
            QuasiMetric(d)

    def test_ball(self):
        qm = QuasiMetric(metric_matrix())
        assert set(qm.ball(0, 1.5)) == {0, 1}

    def test_symmetrized(self):
        d = np.array(
            [
                [0.0, 1.0, 2.0],
                [1.5, 0.0, 1.5],
                [2.0, 2.0, 0.0],
            ]
        )
        qm = QuasiMetric(d)
        assert not qm.is_symmetric()
        sym = qm.symmetrized()
        assert sym.is_symmetric()
        assert sym.distance(0, 1) == 1.5

    def test_len(self):
        assert len(QuasiMetric(metric_matrix())) == 3


@given(
    st.integers(min_value=3, max_value=7),
    st.integers(min_value=0, max_value=80),
)
def test_induced_quasimetric_always_valid(n, seed):
    """Sec. 2.2: d = f^(1/zeta) satisfies the directed triangle inequality.

    This is the mechanism behind Proposition 1, checked as a property over
    random (asymmetric) decay spaces.
    """
    f = random_decay_matrix(n, seed=seed, low=0.2, high=40.0, symmetric=False)
    space = DecaySpace(f)
    qm = space.induced_quasimetric()
    assert is_triangle_satisfied(qm.d, rtol=1e-6)
    # Constructing with validation on must also succeed.
    QuasiMetric(qm.d, validate=True, rtol=1e-6)


@given(st.integers(min_value=0, max_value=40))
def test_symmetric_space_induces_metric(seed):
    f = random_decay_matrix(6, seed=seed, symmetric=True)
    space = DecaySpace(f)
    assert space.induced_quasimetric().is_symmetric()
