"""Tests for the one-call space characterisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decay import DecaySpace
from repro.diagnostics import characterize
from repro.geometry.points import uniform_points
from repro.spaces.constructions import line_space, uniform_space


class TestCharacterize:
    def test_geometric_space(self):
        pts = np.concatenate(
            [uniform_points(10, extent=8.0, seed=1),
             np.array([[10.0, 10.0], [11.0, 10.0], [12.0, 10.0]])]
        )
        report = characterize(DecaySpace.from_points(pts, 3.0))
        assert report.zeta == pytest.approx(3.0, abs=5e-3)
        assert report.phi <= report.zeta
        assert report.symmetric
        assert report.independence_dimension <= 5  # planar bound
        assert report.exact

    def test_fading_line(self):
        report = characterize(line_space(14, spacing=1.0, alpha=2.0))
        assert report.is_fading
        assert report.theorem2_bound is not None
        assert report.gamma <= report.theorem2_bound + 1e-9

    def test_slow_decay_raises_dimension(self):
        # Finite spaces always fit A slightly below their asymptotic
        # dimension (packings saturate at n), so compare fits instead of
        # expecting the alpha=1 line to cross the fading threshold.
        slow = characterize(line_space(14, spacing=1.0, alpha=1.0))
        fast = characterize(line_space(14, spacing=1.0, alpha=2.0))
        assert slow.assouad_dimension > fast.assouad_dimension + 0.2

    def test_uniform_space_unbounded_growth_flags(self):
        report = characterize(uniform_space(8))
        assert report.independence_dimension == 1
        assert report.zeta == 0.0

    def test_custom_radius(self):
        space = line_space(10, spacing=1.0, alpha=2.0)
        report = characterize(space, fading_radius=4.0)
        assert report.fading_radius == 4.0

    def test_large_space_uses_bounds(self):
        pts = uniform_points(30, extent=15.0, seed=2)
        report = characterize(DecaySpace.from_points(pts, 3.0), exact_limit=20)
        assert not report.exact
        assert report.gamma >= 0.0

    def test_render_contains_parameters(self):
        report = characterize(line_space(8, spacing=1.0, alpha=2.0))
        text = str(report)
        assert "zeta" in text and "phi" in text and "gamma" in text
        assert "fading" in text

    def test_phi_leq_zeta_always(self):
        from tests.conftest import random_decay_matrix

        for seed in range(4):
            space = DecaySpace(random_decay_matrix(8, seed=seed, symmetric=False))
            report = characterize(space)
            assert report.phi <= report.zeta + 1e-6
