"""Tests for the churn-trace vocabulary (repro.dynamics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.context import DynamicContext
from repro.dynamics import ChurnDriver, ChurnEvent, DynamicScenario
from repro.errors import SimulationError
from repro.scenarios import build_scenario


def _substrate(n_links=6, seed=1):
    links = build_scenario("planar_uniform", n_links=n_links, seed=seed)
    pairs = [(l.sender, l.receiver) for l in links]
    return links.space, pairs


class TestDynamicScenario:
    def test_requires_initial_links(self):
        space, _ = _substrate()
        with pytest.raises(SimulationError):
            DynamicScenario(name="x", space=space, initial=())

    def test_requires_sorted_events(self):
        space, pairs = _substrate()
        with pytest.raises(SimulationError):
            DynamicScenario(
                name="x",
                space=space,
                initial=tuple(pairs[:2]),
                events=(
                    ChurnEvent(slot=5, departures=(0,)),
                    ChurnEvent(slot=3, departures=(1,)),
                ),
            )

    def test_rejects_out_of_horizon_events(self):
        """An event at slot >= horizon would silently never fire."""
        space, pairs = _substrate()
        with pytest.raises(SimulationError, match="horizon"):
            DynamicScenario(
                name="x",
                space=space,
                initial=tuple(pairs[:2]),
                events=(ChurnEvent(slot=10, departures=(0,)),),
                horizon=10,
            )
        with pytest.raises(SimulationError, match="horizon"):
            # The default horizon (0) covers no event at all.
            DynamicScenario(
                name="x",
                space=space,
                initial=tuple(pairs[:2]),
                events=(ChurnEvent(slot=0, departures=(0,)),),
            )

    def test_rejects_negative_event_slots(self):
        space, pairs = _substrate()
        with pytest.raises(SimulationError, match="negative"):
            DynamicScenario(
                name="x",
                space=space,
                initial=tuple(pairs[:2]),
                events=(ChurnEvent(slot=-1, arrivals=(pairs[2],)),),
                horizon=5,
            )

    def test_counters_and_initial_links(self):
        space, pairs = _substrate()
        scn = DynamicScenario(
            name="x",
            space=space,
            initial=tuple(pairs[:3]),
            events=(
                ChurnEvent(slot=1, arrivals=(pairs[3],), departures=(0,)),
                ChurnEvent(slot=4, arrivals=(pairs[4], pairs[5])),
            ),
            horizon=10,
        )
        assert scn.m0 == 3
        assert scn.total_arrivals() == 3
        assert scn.total_departures() == 1
        assert scn.initial_links().m == 3


class TestChurnDriver:
    def test_ids_follow_birth_order_and_slots_reused(self):
        space, pairs = _substrate()
        dyn = DynamicContext(space, pairs[:3])
        events = (
            # id 1 departs; the arrival (id 3) reuses its slot 1.
            ChurnEvent(slot=2, arrivals=(pairs[3],), departures=(1,)),
            # id 3 (slot 1) departs again, id 4 arrives.
            ChurnEvent(slot=5, arrivals=(pairs[4],), departures=(3,)),
        )
        driver = ChurnDriver(dyn, events)
        assert driver.step(0) == ([], [])
        arrived, departed = driver.step(2)
        assert departed == [1]
        assert arrived == [1]  # lowest free slot reused
        arrived, departed = driver.step(5)
        assert departed == [1]
        assert arrived == [1]
        assert driver.exhausted

    def test_mismatched_substrate_rejected(self):
        """A trace replayed against the wrong space/population must fail
        loudly at construction, not run with garbage affectance."""
        space_a, pairs_a = _substrate(seed=1)
        space_b, _ = _substrate(seed=2)
        scn = DynamicScenario(
            name="x",
            space=space_a,
            initial=tuple(pairs_a[:3]),
            events=(ChurnEvent(slot=1, departures=(0,)),),
            horizon=5,
        )
        wrong_space = DynamicContext(space_b, pairs_a[:3])
        with pytest.raises(SimulationError, match="substrate"):
            ChurnDriver(wrong_space, scn)
        wrong_population = DynamicContext(space_a, pairs_a[:5])
        with pytest.raises(SimulationError, match="initial links"):
            ChurnDriver(wrong_population, scn)
        # Bare event sequences carry no substrate metadata; they are
        # accepted as-is (the documented expert escape hatch).
        ChurnDriver(wrong_population, scn.events)

    def test_step_state_grows_resets_and_reclaims(self):
        space, pairs = _substrate(n_links=8)
        dyn = DynamicContext(space, pairs[:2], capacity=2)
        events = (
            ChurnEvent(slot=1, arrivals=(pairs[2], pairs[3])),
            ChurnEvent(slot=3, departures=(0,)),
        )
        driver = ChurnDriver(dyn, events)
        state = np.array([5.0, 7.0])
        state, arrived, departed, reclaimed = driver.step_state(1, state)
        assert state.shape[0] == dyn.capacity >= 4
        assert arrived == [2, 3]
        assert reclaimed == 0.0
        assert state[2] == state[3] == 0.0
        assert state[0] == 5.0 and state[1] == 7.0
        state[2] = 9.0
        state, arrived, departed, reclaimed = driver.step_state(3, state)
        assert departed == [0]
        assert reclaimed == 5.0
        assert state[0] == 0.0 and state[2] == 9.0

    def test_step_state_reclaims_exact_queue_mass_across_batches(self):
        """Across a multi-event batch with slot reuse, ``reclaimed`` must
        equal exactly the queue mass of the links that departed — no
        double counting when an arrival reuses a freed slot mid-batch."""
        space, pairs = _substrate(n_links=10)
        dyn = DynamicContext(space, pairs[:4])
        events = (
            # Applied in one step_state(6) call: id 1 (slot 1, queue 7)
            # leaves, a new link (id 4) reuses slot 1, then id 4 itself
            # departs with an *empty* queue, and id 0 (queue 2) leaves.
            ChurnEvent(slot=3, departures=(1,), arrivals=(pairs[4],)),
            ChurnEvent(slot=5, departures=(4,), arrivals=(pairs[5],)),
            ChurnEvent(slot=6, departures=(0,)),
        )
        driver = ChurnDriver(dyn, events)
        state = np.array([2.0, 7.0, 11.0, 3.0])
        state, arrived, departed, reclaimed = driver.step_state(6, state)
        # Slot 1 appears twice in the departure list (id 1, then id 4
        # reusing it).  Only id 1 carried backlog: a batched
        # state[departed].sum() would count its 7 packets twice.
        assert departed == [1, 1, 0]
        assert arrived == [1, 1]  # freed slot reused lowest-first, twice
        assert reclaimed == 7.0 + 0.0 + 2.0
        assert np.all(state[[0, 1]] == 0.0)
        assert state[2] == 11.0 and state[3] == 3.0
        assert dyn.m == 3

    def test_unknown_departure_raises(self):
        space, pairs = _substrate()
        dyn = DynamicContext(space, pairs[:2])
        driver = ChurnDriver(
            dyn, (ChurnEvent(slot=0, departures=(7,)),)
        )
        with pytest.raises(SimulationError):
            driver.step(0)

    def test_accepts_scenario_object(self):
        space, pairs = _substrate()
        scn = DynamicScenario(
            name="x",
            space=space,
            initial=tuple(pairs[:2]),
            events=(ChurnEvent(slot=1, arrivals=(pairs[2],)),),
            horizon=5,
        )
        dyn = DynamicContext(space, list(scn.initial))
        driver = ChurnDriver(dyn, scn)
        arrived, _ = driver.step(1)
        assert arrived == [2]
        assert dyn.m == 3

    def test_catch_up_applies_skipped_slots(self):
        """Events at or before t are applied even if t jumps past them."""
        space, pairs = _substrate()
        dyn = DynamicContext(space, pairs[:2])
        driver = ChurnDriver(
            dyn,
            (
                ChurnEvent(slot=1, arrivals=(pairs[2],)),
                ChurnEvent(slot=3, arrivals=(pairs[3],)),
            ),
        )
        arrived, _ = driver.step(10)
        assert arrived == [2, 3]
        assert dyn.m == 4
