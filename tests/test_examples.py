"""Smoke tests: every example script runs end to end."""

from __future__ import annotations

import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 50  # produced a real report


def test_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "indoor_office.py",
        "sensor_broadcast.py",
        "hardness_demo.py",
    } <= names
