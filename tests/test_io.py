"""Tests for decay-space / link-set / shard-layout persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decay import DecaySpace
from repro.errors import ReproError
from repro.io import (
    load_links,
    load_shard_layout,
    load_space,
    load_sparse_affectance,
    save_links,
    save_shard_layout,
    save_space,
    save_sparse_affectance,
)
from tests.conftest import make_planar_links, random_decay_matrix


class TestSpaceRoundtrip:
    def test_roundtrip(self, tmp_path):
        space = DecaySpace(
            random_decay_matrix(8, seed=1, symmetric=False),
            labels=[f"n{i}" for i in range(8)],
        )
        path = tmp_path / "space.npz"
        save_space(path, space)
        loaded = load_space(path)
        assert loaded == space
        assert loaded.labels == space.labels

    def test_roundtrip_without_labels(self, tmp_path):
        space = DecaySpace(random_decay_matrix(5, seed=2))
        path = tmp_path / "space.npz"
        save_space(path, space)
        assert load_space(path) == space
        assert load_space(path).labels is None

    def test_bare_path_roundtrips(self, tmp_path):
        """savez appends .npz to bare paths; load must find the file."""
        space = DecaySpace(random_decay_matrix(4, seed=7))
        bare = tmp_path / "space_no_suffix"
        save_space(bare, space)
        assert (tmp_path / "space_no_suffix.npz").exists()
        assert load_space(bare) == space
        assert load_space(tmp_path / "space_no_suffix.npz") == space

    def test_directory_with_bare_name_does_not_shadow_archive(self, tmp_path):
        """A directory named like the bare path must not shadow the
        .npz the saver actually wrote next to it."""
        space = DecaySpace(random_decay_matrix(4, seed=12))
        (tmp_path / "results").mkdir()
        save_space(tmp_path / "results", space)  # writes results.npz
        assert load_space(tmp_path / "results") == space

    def test_renamed_archive_still_loads(self, tmp_path):
        """An existing file is opened as named — appending .npz is only
        a fallback for bare save-style paths, not a rewrite."""
        space = DecaySpace(random_decay_matrix(4, seed=11))
        save_space(tmp_path / "orig.npz", space)
        renamed = tmp_path / "measurement.dat"
        (tmp_path / "orig.npz").rename(renamed)
        assert load_space(renamed) == space

    def test_rejects_future_format_version(self, tmp_path):
        path = tmp_path / "future.npz"
        np.savez(
            path,
            format_version=np.array([99]),
            decay=random_decay_matrix(4, seed=8),
        )
        with pytest.raises(ReproError, match="newer than supported"):
            load_space(path)

    def test_rejects_missing_format_version(self, tmp_path):
        path = tmp_path / "unversioned.npz"
        np.savez(path, decay=random_decay_matrix(4, seed=9))
        with pytest.raises(ReproError, match="format_version"):
            load_space(path)

    def test_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ReproError, match="not a decay-space"):
            load_space(path)

    def test_loaded_space_revalidated(self, tmp_path):
        # Corrupt archive: negative decay must be rejected on load.
        path = tmp_path / "bad.npz"
        f = random_decay_matrix(4, seed=3)
        f[0, 1] = -1.0
        np.savez(path, format_version=np.array([1]), decay=f)
        with pytest.raises(Exception):
            load_space(path)


class TestLinksRoundtrip:
    def test_roundtrip(self, tmp_path):
        links = make_planar_links(6, alpha=3.0, seed=4)
        path = tmp_path / "links.npz"
        save_links(path, links)
        loaded = load_links(path)
        assert loaded.m == links.m
        assert np.array_equal(loaded.senders, links.senders)
        assert np.array_equal(loaded.receivers, links.receivers)
        assert loaded.space == links.space

    def test_semantics_preserved(self, tmp_path):
        """Algorithms produce identical output on the reloaded instance."""
        from repro.algorithms.capacity import capacity_bounded_growth

        links = make_planar_links(8, alpha=3.0, seed=5)
        path = tmp_path / "links.npz"
        save_links(path, links)
        loaded = load_links(path)
        assert (
            capacity_bounded_growth(loaded).selected
            == capacity_bounded_growth(links).selected
        )

    def test_bare_path_roundtrips(self, tmp_path):
        """The historical trap: save_links("foo") wrote foo.npz but
        load_links("foo") tried to open the bare path and failed."""
        links = make_planar_links(5, alpha=3.0, seed=6)
        bare = tmp_path / "links_no_suffix"
        save_links(bare, links)
        assert (tmp_path / "links_no_suffix.npz").exists()
        for target in (bare, tmp_path / "links_no_suffix.npz"):
            loaded = load_links(target)
            assert np.array_equal(loaded.senders, links.senders)
            assert loaded.space == links.space

    def test_labels_preserved(self, tmp_path):
        space = DecaySpace(
            random_decay_matrix(6, seed=7),
            labels=[f"ap{i}" for i in range(6)],
        )
        from repro.core.links import LinkSet

        links = LinkSet(space, [(0, 1), (2, 3)])
        path = tmp_path / "labelled.npz"
        save_links(path, links)
        assert load_links(path).space.labels == space.labels

    def test_rejects_future_format_version(self, tmp_path):
        """load_links historically skipped the version check entirely, so
        a future-format archive was silently misread."""
        path = tmp_path / "future.npz"
        np.savez(
            path,
            format_version=np.array([99]),
            decay=random_decay_matrix(3, seed=2),
            senders=np.array([0]),
            receivers=np.array([1]),
        )
        with pytest.raises(ReproError, match="newer than supported"):
            load_links(path)

    def test_rejects_missing_format_version(self, tmp_path):
        path = tmp_path / "unversioned.npz"
        np.savez(
            path,
            decay=random_decay_matrix(3, seed=3),
            senders=np.array([0]),
            receivers=np.array([1]),
        )
        with pytest.raises(ReproError, match="format_version"):
            load_links(path)

    def test_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, decay=random_decay_matrix(3, seed=1))
        with pytest.raises(ReproError, match="not a link-set"):
            load_links(path)


class TestGeometryRoundtrip:
    def test_geometry_rides_along(self, tmp_path):
        links = make_planar_links(6, alpha=3.0, seed=4)
        assert links.space.geometry is not None
        save_space(tmp_path / "sp", links.space)
        save_links(tmp_path / "lk", links)
        for loaded_space in (
            load_space(tmp_path / "sp"),
            load_links(tmp_path / "lk").space,
        ):
            geo = loaded_space.geometry
            assert geo is not None
            assert np.array_equal(geo.points, links.space.geometry.points)
            assert geo.alpha == links.space.geometry.alpha
            assert geo.floor == links.space.geometry.floor

    def test_loaded_links_stay_sparse_capable(self, tmp_path):
        from repro.algorithms.context import SchedulingContext

        links = make_planar_links(10, alpha=3.0, seed=9)
        save_links(tmp_path / "lk", links)
        loaded = load_links(tmp_path / "lk")
        dense = SchedulingContext(links, noise=0.0, beta=1.0)
        sparse = SchedulingContext(
            loaded, noise=0.0, beta=1.0, backend="sparse", eps=1e-300
        )
        assert dense.first_fit() == sparse.first_fit()

    def test_version1_archive_without_geometry_loads(self, tmp_path):
        path = tmp_path / "v1.npz"
        f = random_decay_matrix(4, seed=6)
        np.savez(path, format_version=np.array([1]), decay=f)
        loaded = load_space(path)
        assert np.array_equal(loaded.f, f)
        assert loaded.geometry is None


class TestSparseAffectanceRoundtrip:
    def _build(self, eps=1e-2):
        from repro.algorithms.context import SchedulingContext

        links = make_planar_links(20, alpha=3.0, seed=8)
        ctx = SchedulingContext(
            links, noise=0.0, beta=1.0, backend="sparse", eps=eps
        )
        return links, ctx

    def test_roundtrip(self, tmp_path):
        _, ctx = self._build()
        sparse = ctx.sparse_affectance
        save_sparse_affectance(tmp_path / "sa", sparse)
        loaded = load_sparse_affectance(tmp_path / "sa")
        assert loaded.m == sparse.m
        assert loaded.nnz == sparse.nnz
        assert np.array_equal(loaded.row_ptr, sparse.row_ptr)
        assert np.array_equal(loaded.row_idx, sparse.row_idx)
        assert np.array_equal(loaded.col_ptr, sparse.col_ptr)
        assert np.array_equal(loaded.col_idx, sparse.col_idx)
        assert np.array_equal(loaded.triplets()[2], sparse.triplets()[2])
        assert np.array_equal(loaded.tail_in, sparse.tail_in)
        assert np.array_equal(loaded.tail_out, sparse.tail_out)
        assert (loaded.eps, loaded.radius, loaded.cell_size) == (
            sparse.eps,
            sparse.radius,
            sparse.cell_size,
        )

    def test_loaded_pattern_schedules_identically(self, tmp_path):
        links, ctx = self._build(eps=1e-300)
        sparse = ctx.sparse_affectance
        save_sparse_affectance(tmp_path / "sa", sparse)
        from repro.algorithms.context import SchedulingContext

        ctx2 = SchedulingContext(
            links, noise=0.0, beta=1.0, backend="sparse", eps=1e-300
        )
        ctx2._cache["sparse"] = load_sparse_affectance(tmp_path / "sa")
        assert ctx.first_fit() == ctx2.first_fit()
        assert ctx.repeated_capacity() == ctx2.repeated_capacity()

    def test_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, decay=random_decay_matrix(3, seed=1))
        with pytest.raises(ReproError, match="not a sparse-affectance"):
            load_sparse_affectance(path)

    def test_rejects_future_format_version(self, tmp_path):
        _, ctx = self._build()
        save_sparse_affectance(tmp_path / "sa", ctx.sparse_affectance)
        # Rewrite the version stamp alone, leaving the payload intact.
        with np.load(tmp_path / "sa.npz") as archive:
            payload = {k: archive[k] for k in archive.files}
        payload["format_version"] = np.array([99])
        np.savez(tmp_path / "future.npz", **payload)
        with pytest.raises(ReproError, match="newer than supported"):
            load_sparse_affectance(tmp_path / "future.npz")

    def test_tampered_tails_fail_loudly(self, tmp_path):
        _, ctx = self._build()
        save_sparse_affectance(tmp_path / "sa", ctx.sparse_affectance)
        with np.load(tmp_path / "sa.npz") as archive:
            payload = {k: archive[k] for k in archive.files}
        payload["tail_in"] = payload["tail_in"][:-1]
        np.savez(tmp_path / "bad.npz", **payload)
        with pytest.raises(Exception):
            load_sparse_affectance(tmp_path / "bad.npz")


class TestShardLayoutRoundtrip:
    def _layout(self, eps=0.4):
        from repro.algorithms.context import SchedulingContext
        from repro.algorithms.sharding import build_shard_layout

        links = make_planar_links(48, alpha=3.0, seed=8)
        ctx = SchedulingContext(
            links, noise=0.0, beta=1.0, backend="sparse", eps=eps
        )
        return ctx, build_shard_layout(ctx, shards=3)

    def _tampered(self, tmp_path, mutate):
        """Save a layout, rewrite one field, return the bad path."""
        _, layout = self._layout()
        save_shard_layout(tmp_path / "lay", layout)
        with np.load(tmp_path / "lay.npz") as archive:
            payload = {k: archive[k] for k in archive.files}
        mutate(payload)
        bad = tmp_path / "bad.npz"
        np.savez(bad, **payload)
        return bad

    def test_roundtrip(self, tmp_path):
        _, layout = self._layout()
        assert layout.n_shards >= 2  # exercise a real multi-shard sidecar
        save_shard_layout(tmp_path / "lay", layout)
        loaded = load_shard_layout(tmp_path / "lay")
        assert loaded.n_shards == layout.n_shards
        assert loaded.m == layout.m
        assert loaded.radius == layout.radius
        assert np.array_equal(loaded.owner, layout.owner)
        for k in range(layout.n_shards):
            assert np.array_equal(loaded.interior[k], layout.interior[k])
            assert np.array_equal(loaded.halo[k], layout.halo[k])
        assert np.array_equal(
            loaded.partition.shard_of_cell, layout.partition.shard_of_cell
        )

    def test_loaded_layout_schedules_identically(self, tmp_path):
        from repro.algorithms.sharding import ShardedContext

        ctx, layout = self._layout()
        save_shard_layout(tmp_path / "lay", layout)
        loaded = load_shard_layout(tmp_path / "lay")
        assert (
            ShardedContext(ctx, layout=loaded).first_fit()
            == ShardedContext(ctx, layout=layout).first_fit()
        )

    def test_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, decay=random_decay_matrix(3, seed=1))
        with pytest.raises(ReproError, match="not a shard-layout"):
            load_shard_layout(path)

    def test_tampered_cell_size_fails_loudly(self, tmp_path):
        """A grid rescaled away from the certified interaction radius
        invalidates the halo certificate."""

        def mutate(payload):
            payload["shard_params"] = payload["shard_params"].copy()
            payload["shard_params"][0] *= 2.0

        bad = self._tampered(tmp_path, mutate)
        with pytest.raises(ReproError, match="interaction radius"):
            load_shard_layout(bad)

    def test_tampered_shard_count_fails_loudly(self, tmp_path):
        def mutate(payload):
            payload["shard_counts"] = payload["shard_counts"].copy()
            payload["shard_counts"][1] += 1

        bad = self._tampered(tmp_path, mutate)
        with pytest.raises(ReproError, match="claims"):
            load_shard_layout(bad)

    def test_tampered_cell_assignment_fails_loudly(self, tmp_path):
        """Non-contiguous per-cell shard ids break the predecessor rule
        the partition's cut relies on."""

        def mutate(payload):
            ids = payload["shard_of_cell"].copy()
            ids[0] = ids.max()  # first cell jumps to the last shard
            payload["shard_of_cell"] = ids

        bad = self._tampered(tmp_path, mutate)
        with pytest.raises(ReproError, match="invalid shard partition"):
            load_shard_layout(bad)

    def test_tampered_owner_fails_loudly(self, tmp_path):
        def mutate(payload):
            owner = payload["shard_owner"].copy()
            owner[0] = (owner[0] + 1) % int(payload["shard_counts"][1])
            payload["shard_owner"] = owner

        bad = self._tampered(tmp_path, mutate)
        with pytest.raises(ReproError, match="disagree with the stored"):
            load_shard_layout(bad)


class TestSchedulerStateArchive:
    """The dumb-envelope scheduler-state archive and the sidecar
    version cross-check it introduced (format version 3)."""

    def _state(self):
        return {
            "repair_slots": np.arange(5, dtype=np.int64),
            "repair_ledger": np.linspace(0.0, 1.0, 5),
        }

    def test_roundtrip(self, tmp_path):
        from repro.io import load_scheduler_state, save_scheduler_state

        state = self._state()
        save_scheduler_state(tmp_path / "st", state, kind="capacity")
        kind, loaded = load_scheduler_state(tmp_path / "st")
        assert kind == "capacity"
        assert set(loaded) == set(state)
        for key in state:
            assert np.array_equal(loaded[key], state[key])

    def test_wrong_kind_rejected_up_front(self, tmp_path):
        from repro.io import load_scheduler_state, save_scheduler_state

        save_scheduler_state(tmp_path / "st", self._state(), kind="first_fit")
        with pytest.raises(ReproError, match="checkpointed from a"):
            load_scheduler_state(tmp_path / "st", expect_kind="capacity")

    def test_payload_may_not_shadow_framing_keys(self, tmp_path):
        from repro.io import save_scheduler_state

        bad = dict(self._state(), scheduler_kind=np.array(["x"]))
        with pytest.raises(ReproError, match="reserved archive keys"):
            save_scheduler_state(tmp_path / "st", bad, kind="first_fit")

    def test_rejects_foreign_archive(self, tmp_path):
        from repro.io import load_scheduler_state

        path = tmp_path / "other.npz"
        np.savez(path, decay=random_decay_matrix(3, seed=1))
        with pytest.raises(ReproError, match="not a scheduler-state"):
            load_scheduler_state(path)


class TestSidecarVersionCrossCheck:
    """Regression: sidecar loaders used to accept any supported version,
    so a main archive paired with a sidecar written by a different
    build could load as a silently mixed-version pair."""

    def test_archive_format_version_reads_stamp(self, tmp_path):
        space = DecaySpace(random_decay_matrix(4, seed=3))
        save_space(tmp_path / "space", space)
        from repro.io import _FORMAT_VERSION, archive_format_version

        assert archive_format_version(tmp_path / "space") == _FORMAT_VERSION

    def test_archive_format_version_rejects_unstamped(self, tmp_path):
        from repro.io import archive_format_version

        path = tmp_path / "raw.npz"
        np.savez(path, decay=random_decay_matrix(3, seed=1))
        with pytest.raises(ReproError, match="no format_version"):
            archive_format_version(path)

    def _aged(self, tmp_path, save, name):
        """Save a sidecar, rewrite its stamp to version 2, return path."""
        save(tmp_path / name)
        with np.load(tmp_path / f"{name}.npz") as archive:
            payload = {k: archive[k] for k in archive.files}
        payload["format_version"] = np.array([2])
        old = tmp_path / f"old_{name}.npz"
        np.savez(old, **payload)
        return old

    def test_mixed_version_shard_layout_pair_rejected(self, tmp_path):
        from repro.algorithms.context import SchedulingContext
        from repro.algorithms.sharding import build_shard_layout
        from repro.io import _FORMAT_VERSION

        links = make_planar_links(48, alpha=3.0, seed=8)
        ctx = SchedulingContext(
            links, noise=0.0, beta=1.0, backend="sparse", eps=0.4
        )
        layout = build_shard_layout(ctx, shards=3)
        old = self._aged(
            tmp_path, lambda p: save_shard_layout(p, layout), "lay"
        )
        # Version 2 is still loadable on its own...
        load_shard_layout(old)
        # ...but not next to a version-3 main archive.
        with pytest.raises(ReproError, match="mixed-version"):
            load_shard_layout(old, expect_version=_FORMAT_VERSION)

    def test_mixed_version_sparse_pattern_pair_rejected(self, tmp_path):
        from repro.algorithms.context import SchedulingContext
        from repro.io import _FORMAT_VERSION

        links = make_planar_links(20, alpha=3.0, seed=8)
        ctx = SchedulingContext(
            links, noise=0.0, beta=1.0, backend="sparse", eps=1e-2
        )
        old = self._aged(
            tmp_path,
            lambda p: save_sparse_affectance(p, ctx.sparse_affectance),
            "sa",
        )
        load_sparse_affectance(old)
        with pytest.raises(ReproError, match="mixed-version"):
            load_sparse_affectance(old, expect_version=_FORMAT_VERSION)
