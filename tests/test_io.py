"""Tests for decay-space / link-set persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decay import DecaySpace
from repro.errors import ReproError
from repro.io import load_links, load_space, save_links, save_space
from tests.conftest import make_planar_links, random_decay_matrix


class TestSpaceRoundtrip:
    def test_roundtrip(self, tmp_path):
        space = DecaySpace(
            random_decay_matrix(8, seed=1, symmetric=False),
            labels=[f"n{i}" for i in range(8)],
        )
        path = tmp_path / "space.npz"
        save_space(path, space)
        loaded = load_space(path)
        assert loaded == space
        assert loaded.labels == space.labels

    def test_roundtrip_without_labels(self, tmp_path):
        space = DecaySpace(random_decay_matrix(5, seed=2))
        path = tmp_path / "space.npz"
        save_space(path, space)
        assert load_space(path) == space
        assert load_space(path).labels is None

    def test_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ReproError, match="not a decay-space"):
            load_space(path)

    def test_loaded_space_revalidated(self, tmp_path):
        # Corrupt archive: negative decay must be rejected on load.
        path = tmp_path / "bad.npz"
        f = random_decay_matrix(4, seed=3)
        f[0, 1] = -1.0
        np.savez(path, format_version=np.array([1]), decay=f)
        with pytest.raises(Exception):
            load_space(path)


class TestLinksRoundtrip:
    def test_roundtrip(self, tmp_path):
        links = make_planar_links(6, alpha=3.0, seed=4)
        path = tmp_path / "links.npz"
        save_links(path, links)
        loaded = load_links(path)
        assert loaded.m == links.m
        assert np.array_equal(loaded.senders, links.senders)
        assert np.array_equal(loaded.receivers, links.receivers)
        assert loaded.space == links.space

    def test_semantics_preserved(self, tmp_path):
        """Algorithms produce identical output on the reloaded instance."""
        from repro.algorithms.capacity import capacity_bounded_growth

        links = make_planar_links(8, alpha=3.0, seed=5)
        path = tmp_path / "links.npz"
        save_links(path, links)
        loaded = load_links(path)
        assert (
            capacity_bounded_growth(loaded).selected
            == capacity_bounded_growth(links).selected
        )

    def test_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, decay=random_decay_matrix(3, seed=1))
        with pytest.raises(ReproError, match="not a link-set"):
            load_links(path)
