"""Tests for decay-space / link-set persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decay import DecaySpace
from repro.errors import ReproError
from repro.io import load_links, load_space, save_links, save_space
from tests.conftest import make_planar_links, random_decay_matrix


class TestSpaceRoundtrip:
    def test_roundtrip(self, tmp_path):
        space = DecaySpace(
            random_decay_matrix(8, seed=1, symmetric=False),
            labels=[f"n{i}" for i in range(8)],
        )
        path = tmp_path / "space.npz"
        save_space(path, space)
        loaded = load_space(path)
        assert loaded == space
        assert loaded.labels == space.labels

    def test_roundtrip_without_labels(self, tmp_path):
        space = DecaySpace(random_decay_matrix(5, seed=2))
        path = tmp_path / "space.npz"
        save_space(path, space)
        assert load_space(path) == space
        assert load_space(path).labels is None

    def test_bare_path_roundtrips(self, tmp_path):
        """savez appends .npz to bare paths; load must find the file."""
        space = DecaySpace(random_decay_matrix(4, seed=7))
        bare = tmp_path / "space_no_suffix"
        save_space(bare, space)
        assert (tmp_path / "space_no_suffix.npz").exists()
        assert load_space(bare) == space
        assert load_space(tmp_path / "space_no_suffix.npz") == space

    def test_directory_with_bare_name_does_not_shadow_archive(self, tmp_path):
        """A directory named like the bare path must not shadow the
        .npz the saver actually wrote next to it."""
        space = DecaySpace(random_decay_matrix(4, seed=12))
        (tmp_path / "results").mkdir()
        save_space(tmp_path / "results", space)  # writes results.npz
        assert load_space(tmp_path / "results") == space

    def test_renamed_archive_still_loads(self, tmp_path):
        """An existing file is opened as named — appending .npz is only
        a fallback for bare save-style paths, not a rewrite."""
        space = DecaySpace(random_decay_matrix(4, seed=11))
        save_space(tmp_path / "orig.npz", space)
        renamed = tmp_path / "measurement.dat"
        (tmp_path / "orig.npz").rename(renamed)
        assert load_space(renamed) == space

    def test_rejects_future_format_version(self, tmp_path):
        path = tmp_path / "future.npz"
        np.savez(
            path,
            format_version=np.array([99]),
            decay=random_decay_matrix(4, seed=8),
        )
        with pytest.raises(ReproError, match="newer than supported"):
            load_space(path)

    def test_rejects_missing_format_version(self, tmp_path):
        path = tmp_path / "unversioned.npz"
        np.savez(path, decay=random_decay_matrix(4, seed=9))
        with pytest.raises(ReproError, match="format_version"):
            load_space(path)

    def test_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ReproError, match="not a decay-space"):
            load_space(path)

    def test_loaded_space_revalidated(self, tmp_path):
        # Corrupt archive: negative decay must be rejected on load.
        path = tmp_path / "bad.npz"
        f = random_decay_matrix(4, seed=3)
        f[0, 1] = -1.0
        np.savez(path, format_version=np.array([1]), decay=f)
        with pytest.raises(Exception):
            load_space(path)


class TestLinksRoundtrip:
    def test_roundtrip(self, tmp_path):
        links = make_planar_links(6, alpha=3.0, seed=4)
        path = tmp_path / "links.npz"
        save_links(path, links)
        loaded = load_links(path)
        assert loaded.m == links.m
        assert np.array_equal(loaded.senders, links.senders)
        assert np.array_equal(loaded.receivers, links.receivers)
        assert loaded.space == links.space

    def test_semantics_preserved(self, tmp_path):
        """Algorithms produce identical output on the reloaded instance."""
        from repro.algorithms.capacity import capacity_bounded_growth

        links = make_planar_links(8, alpha=3.0, seed=5)
        path = tmp_path / "links.npz"
        save_links(path, links)
        loaded = load_links(path)
        assert (
            capacity_bounded_growth(loaded).selected
            == capacity_bounded_growth(links).selected
        )

    def test_bare_path_roundtrips(self, tmp_path):
        """The historical trap: save_links("foo") wrote foo.npz but
        load_links("foo") tried to open the bare path and failed."""
        links = make_planar_links(5, alpha=3.0, seed=6)
        bare = tmp_path / "links_no_suffix"
        save_links(bare, links)
        assert (tmp_path / "links_no_suffix.npz").exists()
        for target in (bare, tmp_path / "links_no_suffix.npz"):
            loaded = load_links(target)
            assert np.array_equal(loaded.senders, links.senders)
            assert loaded.space == links.space

    def test_labels_preserved(self, tmp_path):
        space = DecaySpace(
            random_decay_matrix(6, seed=7),
            labels=[f"ap{i}" for i in range(6)],
        )
        from repro.core.links import LinkSet

        links = LinkSet(space, [(0, 1), (2, 3)])
        path = tmp_path / "labelled.npz"
        save_links(path, links)
        assert load_links(path).space.labels == space.labels

    def test_rejects_future_format_version(self, tmp_path):
        """load_links historically skipped the version check entirely, so
        a future-format archive was silently misread."""
        path = tmp_path / "future.npz"
        np.savez(
            path,
            format_version=np.array([99]),
            decay=random_decay_matrix(3, seed=2),
            senders=np.array([0]),
            receivers=np.array([1]),
        )
        with pytest.raises(ReproError, match="newer than supported"):
            load_links(path)

    def test_rejects_missing_format_version(self, tmp_path):
        path = tmp_path / "unversioned.npz"
        np.savez(
            path,
            decay=random_decay_matrix(3, seed=3),
            senders=np.array([0]),
            receivers=np.array([1]),
        )
        with pytest.raises(ReproError, match="format_version"):
            load_links(path)

    def test_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, decay=random_decay_matrix(3, seed=1))
        with pytest.raises(ReproError, match="not a link-set"):
            load_links(path)
