"""Tests for the scenario registry: every algorithm across every scenario."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.capacity import capacity_bounded_growth
from repro.algorithms.capacity_general import (
    capacity_general_metric,
    capacity_strongest_first,
)
from repro.algorithms.context import DynamicContext, SchedulingContext
from repro.algorithms.scheduling import (
    schedule_first_fit,
    schedule_repeated_capacity,
)
from repro.core.feasibility import is_feasible
from repro.core.links import LinkSet
from repro.core.power import uniform_power
from repro.errors import DecaySpaceError
from repro.dynamics import ChurnDriver, DynamicScenario
from repro.scenarios import (
    DYNAMIC_SCENARIOS,
    SCENARIOS,
    build_dynamic_scenario,
    build_scenario,
    dynamic_scenario_names,
    iter_dynamic_scenarios,
    iter_scenarios,
    register_dynamic_scenario,
    register_scenario,
    scenario_names,
)

EXPECTED = {
    "planar_uniform",
    "clustered",
    "corridor",
    "asymmetric_measured",
    "rayleigh_fading",
}

EXPECTED_DYNAMIC = {"poisson_churn", "random_waypoint"}


class TestRegistry:
    def test_builtin_scenarios_registered(self):
        assert EXPECTED <= set(scenario_names())

    def test_unknown_scenario_rejected(self):
        with pytest.raises(DecaySpaceError, match="unknown scenario"):
            build_scenario("definitely_not_registered")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(DecaySpaceError, match="already registered"):
            register_scenario("planar_uniform")(SCENARIOS["planar_uniform"])

    def test_register_and_build_custom(self):
        name = "_test_only_scenario"
        try:
            @register_scenario(name)
            def _custom(n_links, seed=0):
                return build_scenario("planar_uniform", n_links, seed)

            links = build_scenario(name, n_links=4, seed=1)
            assert isinstance(links, LinkSet) and links.m == 4
        finally:
            SCENARIOS.pop(name, None)


@pytest.mark.parametrize("name", sorted(EXPECTED))
class TestEachScenario:
    def test_builds_valid_linkset(self, name):
        links = build_scenario(name, n_links=12, seed=5)
        assert isinstance(links, LinkSet)
        assert links.m == 12
        assert np.all(links.lengths > 0)

    def test_deterministic_in_seed(self, name):
        a = build_scenario(name, n_links=10, seed=7)
        b = build_scenario(name, n_links=10, seed=7)
        c = build_scenario(name, n_links=10, seed=8)
        assert np.array_equal(a.space.f, b.space.f)
        assert not np.array_equal(a.space.f, c.space.f)

    def test_capacity_algorithms_feasible(self, name):
        links = build_scenario(name, n_links=14, seed=2)
        powers = uniform_power(links)
        for algo in (
            capacity_bounded_growth,
            capacity_general_metric,
            capacity_strongest_first,
        ):
            result = algo(links)
            assert is_feasible(links, list(result.selected), powers), algo

    def test_scheduling_partitions_all_links(self, name):
        links = build_scenario(name, n_links=14, seed=2)
        powers = uniform_power(links)
        for schedule in (
            schedule_first_fit(links),
            schedule_repeated_capacity(links),
        ):
            assert schedule.all_links() == tuple(range(links.m))
            for slot in schedule.slots:
                assert is_feasible(links, list(slot), powers)


class TestScenarioShapes:
    def test_asymmetric_scenario_is_asymmetric(self):
        links = build_scenario("asymmetric_measured", n_links=10, seed=1)
        assert not links.space.is_symmetric()

    def test_rayleigh_scenario_is_asymmetric(self):
        links = build_scenario("rayleigh_fading", n_links=10, seed=1)
        assert not links.space.is_symmetric()

    def test_geometric_scenarios_have_zeta_alpha(self):
        for name in ("planar_uniform", "clustered"):
            links = build_scenario(name, n_links=15, seed=4, alpha=3.0)
            assert links.space.metricity() <= 3.0 + 5e-3

    def test_corridor_walls_raise_metricity(self):
        walls = build_scenario("corridor", n_links=15, seed=4, alpha=3.0)
        free = build_scenario("planar_uniform", n_links=15, seed=4, alpha=3.0)
        assert walls.space.metricity() > free.space.metricity()

    def test_iter_scenarios_covers_registry(self):
        seen = [name for name, links in iter_scenarios(n_links=5, seed=0)]
        assert set(seen) == set(scenario_names())


def test_scenarios_work_with_shared_context():
    for name in sorted(EXPECTED):
        links = build_scenario(name, n_links=10, seed=3)
        ctx = SchedulingContext(links)
        slots = ctx.repeated_capacity()
        assert tuple(sorted(v for s in slots for v in s)) == tuple(range(10))
        assert all(ctx.is_feasible(s) for s in slots)


class TestDynamicRegistry:
    def test_builtin_dynamic_scenarios_registered(self):
        assert EXPECTED_DYNAMIC <= set(dynamic_scenario_names())

    def test_unknown_dynamic_scenario_rejected(self):
        with pytest.raises(DecaySpaceError, match="unknown dynamic scenario"):
            build_dynamic_scenario("definitely_not_registered")

    def test_duplicate_dynamic_registration_rejected(self):
        with pytest.raises(DecaySpaceError, match="already registered"):
            register_dynamic_scenario("poisson_churn")(
                DYNAMIC_SCENARIOS["poisson_churn"]
            )

    def test_iter_dynamic_scenarios_covers_registry(self):
        seen = [
            name
            for name, scn in iter_dynamic_scenarios(n_links=5, seed=0)
        ]
        assert set(seen) == set(dynamic_scenario_names())


@pytest.mark.parametrize("name", sorted(EXPECTED_DYNAMIC))
class TestEachDynamicScenario:
    def test_builds_valid_scenario(self, name):
        scn = build_dynamic_scenario(name, n_links=10, seed=5)
        assert isinstance(scn, DynamicScenario)
        assert scn.m0 == 10
        assert scn.horizon >= 1
        assert len(scn.events) >= 1
        assert all(ev.slot < scn.horizon for ev in scn.events)
        assert scn.initial_links().m == 10

    def test_deterministic_in_seed(self, name):
        a = build_dynamic_scenario(name, n_links=8, seed=7)
        b = build_dynamic_scenario(name, n_links=8, seed=7)
        c = build_dynamic_scenario(name, n_links=8, seed=8)
        assert np.array_equal(a.space.f, b.space.f)
        assert a.initial == b.initial
        assert a.events == b.events
        assert (
            not np.array_equal(a.space.f, c.space.f)
            or a.events != c.events
        )

    def test_trace_replays_through_dynamic_context(self, name):
        """Every trace must be consumable end to end by a ChurnDriver."""
        from repro.algorithms.context import DynamicContext
        from repro.dynamics import ChurnDriver

        scn = build_dynamic_scenario(name, n_links=8, seed=9)
        dyn = DynamicContext(scn.space, list(scn.initial))
        driver = ChurnDriver(dyn, scn)
        driver.step(scn.horizon)
        assert driver.exhausted
        assert dyn.m >= 1


class TestDynamicScenarioShapes:
    def test_poisson_churn_preserves_population(self):
        scn = build_dynamic_scenario(
            "poisson_churn", n_links=10, seed=3, churn_rate=0.3
        )
        for ev in scn.events:
            assert len(ev.arrivals) == len(ev.departures) == 1
        assert scn.total_arrivals() == scn.total_departures()

    def test_random_waypoint_moves_are_paired(self):
        scn = build_dynamic_scenario(
            "random_waypoint", n_links=10, seed=3, steps=3,
            move_fraction=0.5,
        )
        for ev in scn.events:
            assert len(ev.arrivals) == len(ev.departures)
        # The super-space holds initial plus per-move positions.
        assert scn.space.n == 2 * 10 + 2 * scn.total_arrivals()

    def test_substrate_passthrough(self):
        scn = build_dynamic_scenario(
            "poisson_churn", n_links=6, seed=2, substrate="clustered"
        )
        assert scn.m0 == 6

    def test_poisson_churn_burst_size(self):
        """burst_size batches the replacement volume into heavier
        events; burst_size=1 reproduces the historical traces draw for
        draw, and bursty traces replay cleanly (no same-event departure
        of a same-event arrival)."""
        base = build_dynamic_scenario(
            "poisson_churn", n_links=10, seed=3, churn_rate=0.3,
            substrate="planar_uniform",
        )
        one = build_dynamic_scenario(
            "poisson_churn", n_links=10, seed=3, churn_rate=0.3,
            burst_size=1, substrate="planar_uniform",
        )
        assert one.events == base.events
        burst = build_dynamic_scenario(
            "poisson_churn", n_links=10, seed=3, churn_rate=0.3,
            burst_size=3, substrate="planar_uniform",
        )
        for ev in burst.events:
            assert len(ev.arrivals) == len(ev.departures) == 3
        dyn = DynamicContext(burst.space, list(burst.initial))
        driver = ChurnDriver(dyn, burst)
        driver.step(burst.horizon)
        assert driver.exhausted
        assert dyn.m == 10
        with pytest.raises(DecaySpaceError):
            build_dynamic_scenario(
                "poisson_churn", n_links=10, seed=3, burst_size=0,
                substrate="planar_uniform",
            )


class TestStreamedSuperSpace:
    def test_byte_identical_to_up_front_build(self):
        """The streamed assembly must equal DecaySpace.from_points bit
        for bit, for any chunking and append pattern."""
        from repro.core.decay import DecaySpace
        from repro.scenarios import _StreamedSuperSpace

        rng = np.random.default_rng(11)
        pts = rng.uniform(0, 25, size=(83, 2))
        reference = DecaySpace.from_points(pts, 3.0)
        for chunk in (1, 5, 64, 4096):
            stream = _StreamedSuperSpace(pts[:30], 3.0, chunk=chunk)
            stream.append(pts[30:31])
            stream.append(np.empty((0, 2)))
            stream.append(pts[31:70])
            stream.append(pts[70:])
            assert stream.n == 83
            assert np.array_equal(stream.space().f, reference.f)

    def test_waypoint_space_invariant_to_chunking(self):
        """The scenario's decay matrix must not depend on stream_chunk."""
        base = build_dynamic_scenario(
            "random_waypoint", n_links=9, seed=6, steps=3, move_fraction=0.5
        )
        tiny = build_dynamic_scenario(
            "random_waypoint", n_links=9, seed=6, steps=3, move_fraction=0.5,
            stream_chunk=3,
        )
        assert np.array_equal(base.space.f, tiny.space.f)
        assert base.events == tiny.events

    def test_validation(self):
        from repro.scenarios import _StreamedSuperSpace

        with pytest.raises(DecaySpaceError):
            _StreamedSuperSpace(np.zeros((3, 2)), alpha=0.0)
        with pytest.raises(DecaySpaceError):
            _StreamedSuperSpace(np.zeros((3, 2)), alpha=3.0, chunk=0)
        with pytest.raises(DecaySpaceError):
            _StreamedSuperSpace(np.zeros(3), alpha=3.0)
