"""Tests for the scenario registry: every algorithm across every scenario."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.capacity import capacity_bounded_growth
from repro.algorithms.capacity_general import (
    capacity_general_metric,
    capacity_strongest_first,
)
from repro.algorithms.context import SchedulingContext
from repro.algorithms.scheduling import (
    schedule_first_fit,
    schedule_repeated_capacity,
)
from repro.core.feasibility import is_feasible
from repro.core.links import LinkSet
from repro.core.power import uniform_power
from repro.errors import DecaySpaceError
from repro.scenarios import (
    SCENARIOS,
    build_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)

EXPECTED = {
    "planar_uniform",
    "clustered",
    "corridor",
    "asymmetric_measured",
    "rayleigh_fading",
}


class TestRegistry:
    def test_builtin_scenarios_registered(self):
        assert EXPECTED <= set(scenario_names())

    def test_unknown_scenario_rejected(self):
        with pytest.raises(DecaySpaceError, match="unknown scenario"):
            build_scenario("definitely_not_registered")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(DecaySpaceError, match="already registered"):
            register_scenario("planar_uniform")(SCENARIOS["planar_uniform"])

    def test_register_and_build_custom(self):
        name = "_test_only_scenario"
        try:
            @register_scenario(name)
            def _custom(n_links, seed=0):
                return build_scenario("planar_uniform", n_links, seed)

            links = build_scenario(name, n_links=4, seed=1)
            assert isinstance(links, LinkSet) and links.m == 4
        finally:
            SCENARIOS.pop(name, None)


@pytest.mark.parametrize("name", sorted(EXPECTED))
class TestEachScenario:
    def test_builds_valid_linkset(self, name):
        links = build_scenario(name, n_links=12, seed=5)
        assert isinstance(links, LinkSet)
        assert links.m == 12
        assert np.all(links.lengths > 0)

    def test_deterministic_in_seed(self, name):
        a = build_scenario(name, n_links=10, seed=7)
        b = build_scenario(name, n_links=10, seed=7)
        c = build_scenario(name, n_links=10, seed=8)
        assert np.array_equal(a.space.f, b.space.f)
        assert not np.array_equal(a.space.f, c.space.f)

    def test_capacity_algorithms_feasible(self, name):
        links = build_scenario(name, n_links=14, seed=2)
        powers = uniform_power(links)
        for algo in (
            capacity_bounded_growth,
            capacity_general_metric,
            capacity_strongest_first,
        ):
            result = algo(links)
            assert is_feasible(links, list(result.selected), powers), algo

    def test_scheduling_partitions_all_links(self, name):
        links = build_scenario(name, n_links=14, seed=2)
        powers = uniform_power(links)
        for schedule in (
            schedule_first_fit(links),
            schedule_repeated_capacity(links),
        ):
            assert schedule.all_links() == tuple(range(links.m))
            for slot in schedule.slots:
                assert is_feasible(links, list(slot), powers)


class TestScenarioShapes:
    def test_asymmetric_scenario_is_asymmetric(self):
        links = build_scenario("asymmetric_measured", n_links=10, seed=1)
        assert not links.space.is_symmetric()

    def test_rayleigh_scenario_is_asymmetric(self):
        links = build_scenario("rayleigh_fading", n_links=10, seed=1)
        assert not links.space.is_symmetric()

    def test_geometric_scenarios_have_zeta_alpha(self):
        for name in ("planar_uniform", "clustered"):
            links = build_scenario(name, n_links=15, seed=4, alpha=3.0)
            assert links.space.metricity() <= 3.0 + 5e-3

    def test_corridor_walls_raise_metricity(self):
        walls = build_scenario("corridor", n_links=15, seed=4, alpha=3.0)
        free = build_scenario("planar_uniform", n_links=15, seed=4, alpha=3.0)
        assert walls.space.metricity() > free.space.metricity()

    def test_iter_scenarios_covers_registry(self):
        seen = [name for name, links in iter_scenarios(n_links=5, seed=0)]
        assert set(seen) == set(scenario_names())


def test_scenarios_work_with_shared_context():
    for name in sorted(EXPECTED):
        links = build_scenario(name, n_links=10, seed=3)
        ctx = SchedulingContext(links)
        slots = ctx.repeated_capacity()
        assert tuple(sorted(v for s in slots for v in s)) == tuple(range(10))
        assert all(ctx.is_feasible(s) for s in slots)
